// Message-driven publish/subscribe over the geometric overlay — the
// protocol layer of the groups subsystem, running on the discrete-event
// Simulator with real latency/loss, alongside the §2 construction protocol
// (multicast/protocol.hpp) whose kBuildRequestKind these kinds extend.
//
// Control plane: subscribe/unsubscribe/publish envelopes are forwarded hop
// by hop toward the group's rendezvous root with greedy geometric routing
// (overlay/routing.hpp); each hop uses only local information plus the
// group id carried by the envelope. Every control envelope is charged to
// NetworkStats like data traffic (control_envelopes), so finding and
// maintaining a tree costs measurable messages, not free root-side work.
//
// Routed graft (PubSubConfig::routed_graft, default on): a subscribe that
// lands at a root holding a clean cached tree does NOT splice the
// newcomer in locally. The zone descent itself becomes messages — the
// decentralized construction the paper claims, applied to maintenance:
//
//            subscriber --kSubscribeKind-->  root
//                                             | graft_begin (cursor @ root)
//                                             v
//        +----------------- kGraftRequestKind, one DESCENT hop ---------+
//        |  each peer on the path replays ITS partition step against    |
//        |  its recorded zone, follows/creates the slice edge holding   |
//        |  the subscriber's point, and forwards the request to that    |
//        |  child (GroupManager::graft_advance — one decision per       |
//        |  envelope, counted as graft_hops in Group/NetworkStats)      |
//        +---------------------------------------------------------+---+
//              |                            |                      |
//          reaches the                no slice fits /          peer died /
//          subscriber                 cursor invalidated       envelope lost
//              |                            |                      |
//              v                            v                      v
//      kGraftAcceptKind -> root     kGraftRejectKind -> root   QoS 1 retransmit,
//      (graft_finish: booked        (graft_abort: cache        then abandon ->
//      as stats.grafts)             dirtied, resubscribe)      abort + resubscribe
//
// All three graft kinds ride one shared ReliableHopLayer at QoS 1
// (kGraftAckKind acks, ack-timeout retransmits) regardless of the data
// plane's QoS, so a lost control envelope retries instead of stranding
// the subscriber; retransmitted requests are deduped per (peer, graft id)
// and never replay a descent decision. An abort dirties the group's cache
// (the next publish rebuilds, spanning the surviving membership — any
// half-grafted relay path is discarded with the stale tree) and re-issues
// the subscribe from the subscriber (graft_resubscribes), so a root or
// relay dying mid-graft degrades to one extra round trip, never to a
// silently unsubscribed peer. The subscriber's delivery flag is set only
// by the final descent step, so a publish wave racing the graft sees the
// newcomer as (at most) a relay chain and cannot deliver to — or count —
// a half-attached subscriber. With routed_graft off, subscribe falls back
// to GroupManager::subscribe's synchronous local descent: the golden
// oracle the routed path is pinned bit-identical against on lossless
// seeds (tests/groups_routed_graft_test.cpp).
//
// Data plane: the root resolves the group's cached pruned tree through
// the GroupManager and pushes the payload down it, one kDeliverKind
// envelope per tree edge; every peer forwards to its current tree
// children (the forwarding state the build wave installed) and consumes
// the payload iff subscribed, with per-(group, seq) duplicate
// suppression.
//
// Wave coalescing (PubSubConfig::batch_window / max_batch): back-to-back
// publishes to the same group are buffered at the rendezvous root and
// flushed as ONE tree wave whose envelope carries the dense sequence
// range [seq, seq_hi] — one envelope, one ack, one pending-retransmit
// entry, and one retained-buffer slot per tree edge per batch instead of
// per publish, amortising the whole QoS ladder by the batch factor. The
// buffer flushes when the window expires or max_batch publishes have
// joined; delivery stays per-seq at the subscribers (the window splits
// ranges), so the delivered (group, seq) set is identical to unbatched.
//
// The data plane has a QoS ladder (PubSubConfig::reliability): QoS 0 is
// fire-and-forget, QoS 1 runs every kDeliverKind hop through the shared
// per-hop reliability layer (multicast/reliable_hop.hpp) — each hop is
// acked with kDeliverAckKind, the forwarding peer retransmits to its tree
// children on timeout up to a retry budget, and per-(group, seq) dedup
// suppresses retransmission duplicates (re-acked, never re-delivered or
// re-forwarded). QoS 2 layers an end-to-end, receiver-driven repair plane
// on top of those same acked hops: each subscriber runs a per-group
// SubscriberWindow over the dense publish seqs, holds out-of-order waves
// back for in-order release, and — after a gap timeout that defers to
// still-in-flight per-hop recovery (ReliableHopLayer::pending_to) — sends
// batched kNackKind requests up its wave-snapshot ancestor chain: tree
// parent first, escalating ancestor-by-ancestor to the root on a timeout
// or an explicit kRepairMissKind. Responders (the root and forwarders)
// serve kRepairKind from a bounded per-(peer, group) RetainedBuffer
// (GroupManager::retain_payload); a gap no ancestor can serve is abandoned
// after a bounded number of rounds and the window skips past it, so an
// evicted seq degrades delivery instead of stalling the subscriber.
//
// Ordering guarantee per QoS rung (see also the per-QoS assertions in
// tests/groups_reliability_test.cpp):
//  * QoS 0: none. Waves follow the tree snapshot current at publish time,
//    so a graft/repair between publishes can shorten or lengthen a
//    subscriber's path and reorder arrivals (with a static tree and
//    symmetric latency, order happens to hold — that is luck, not
//    contract). Lost waves are simply gone.
//  * QoS 1: none. Per-hop retransmission delays individual waves by whole
//    ack-timeout cycles, so a later publish routinely overtakes an earlier
//    one on the same subscriber (the regression the ordering tests pin).
//  * QoS 2: per-(group, subscriber) in-order release from the window head
//    onward. The head initializes at the first wave a subscriber receives;
//    a wave older than the head (possible only when a subscriber's very
//    first waves race, or after the window abandoned the seq) is released
//    immediately out of band and counted as pre_window_deliveries rather
//    than silently dropped. Gaps the repair plane gives up on are skipped
//    (gap_seqs_abandoned), bounding how long ordering can stall delivery.
//
// Session heartbeats (PubSubConfig::heartbeat_interval, QoS 2 only): the
// classic NACK-scheme tail is that a gap is only detectable from later
// traffic, so a subtree severed during a group's final wave would have
// nothing to trigger its NACKs. Root-driven idle beacons close it: after
// each flush the root re-arms a bounded round of kHeartbeatKind beacons
// carrying the group's highest flushed seq down the current tree; a
// subscriber whose window is behind that horizon opens gaps and NACKs as
// if a later wave had revealed them. Beacons are fire-and-forget — the
// repeated rounds are their redundancy. Residual blind spot: a subscriber
// severed on the group's ONLY wave has an uninitialized window, and a
// beacon must not owe a late joiner the whole history, so it stays silent.
//
// Warm root failover (PubSubConfig::warm_failover): each group's root
// streams its bookkeeping — membership deltas, retained-range inserts,
// pending-batch joins — to the group's replica (the next-nearest alive
// peer to the rendezvous point, recomputable by anyone) as
// kReplicaSyncKind envelopes on a dedicated QoS 1 ReliableHopLayer. On
// root death the recomputed rendezvous root IS that replica, so the
// migration path promotes a warm successor: it keeps the synced
// subscriber set, serves post-migration NACKs from its own RetainedBuffer
// (the replica retains every synced range), and adopts the dead root's
// pending batch from its copy instead of dropping it. Every sync envelope
// is counted (replica_sync_envelopes; the re-bootstrap after a promotion
// or replica death additionally as migration_envelopes), so the handoff
// has a measured price, not a free pointer swap. Off (the default), the
// historic cold rebuild runs bit-identically — the oracle the warm path
// is compared against.
//
// Departures take effect immediately: the network drops envelopes
// addressed to departed peers, greedy forwarding routes around them, and
// the GroupManager repairs or invalidates the affected trees. Tree
// build/repair accounting stays in GroupStats (control-plane bookkeeping);
// the simulator's NetworkStats count the routed control and payload
// envelopes that actually crossed links, plus the reliability layer's
// retransmitted/duplicate/abandoned tallies.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "groups/group_manager.hpp"
#include "groups/message_kinds.hpp"
#include "multicast/reliable_hop.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/pool.hpp"

namespace geomcast::groups {

// Message kinds live in groups/message_kinds.hpp — the one registry of
// every envelope kind this simulation family dispatches on, uniqueness
// checked at compile time.

/// Control envelope routed toward a group root.
struct GroupRequest {
  GroupId group = 0;
  PeerId origin = kInvalidPeer;  // subscriber / publisher
  PeerId target = kInvalidPeer;  // rendezvous root at send time
  /// App messages this publish envelope carries (publisher-side batching,
  /// PubSubConfig::publisher_batch_window; always 1 on the historic path).
  std::uint32_t count = 1;
};

/// Payload envelope travelling down a group tree. Each wave carries an
/// immutable snapshot of the tree it was published on (the forwarding
/// state "installed" for that wave, the way §2 build requests carry
/// zones): grafts/prunes/repairs landing mid-wave affect later publishes
/// only, so delivery accounting is exact against the snapshot. The
/// snapshot lives as long as some envelope of the wave is in flight.
///
/// A wave covers the dense sequence RANGE [seq, seq_hi] (inclusive): the
/// root coalesces publishes landing within PubSubConfig::batch_window into
/// one envelope per tree edge instead of one per publish, so every hop,
/// ack, pending-retransmit entry, and retained-buffer slot is amortised by
/// the batch factor. An unbatched publish is the degenerate seq_hi == seq
/// range, bit-identical to the historic single-seq wave.
struct GroupDelivery {
  GroupId group = 0;
  std::uint64_t seq = 0;     // lowest publish seq the wave carries
  std::uint64_t seq_hi = 0;  // highest (== seq for an unbatched wave)
  /// System-wide wave id — the reliability layer's ack token. Unique across
  /// groups (per-group seqs are not), so concurrent waves of different
  /// groups traversing the same link can never cancel each other's timers.
  /// One wave id covers the whole range: one ack and one retransmit repair
  /// the entire batch at a hop.
  std::uint64_t wave = 0;
  std::shared_ptr<const GroupTree> tree;

  [[nodiscard]] std::uint64_t count() const noexcept { return seq_hi - seq + 1; }
};

/// How waves travel the simulated network: one immutable GroupDelivery per
/// wave, shared by every envelope of the tree push (and by the retained-
/// buffer slots that serve repairs later). The handle is one pointer wide,
/// so it rides std::any's inline buffer and the per-edge fan-out copies
/// are refcount bumps — no heap allocation, no payload copy per envelope.
/// The pointees live in PubSubSystem's payload pool (util/pool.hpp).
using DeliveryPtr = util::RcPtr<GroupDelivery>;

/// Batched gap request: `origin` is missing `seqs` of `group` and asks the
/// addressee (an ancestor from its latest wave snapshot) to resend them.
struct GapNack {
  GroupId group = 0;
  PeerId origin = kInvalidPeer;
  std::vector<std::uint64_t> seqs;
};

/// Responder's "not retained here" for the subset of a NACK it could not
/// serve; the requester escalates those seqs to the next ancestor at once
/// instead of waiting out another gap timeout.
struct GapRepairMiss {
  GroupId group = 0;
  std::vector<std::uint64_t> seqs;
};

/// One routed-graft control envelope (request, accept, and reject all
/// carry the same identity; the kind says which leg of the state machine
/// it is). `graft_id` doubles as the reliability-layer seq token — unique
/// across every graft of a simulation, so concurrent descents crossing
/// one link can never cancel each other's retransmit timers.
struct GraftEnvelope {
  GroupId group = 0;
  PeerId subscriber = kInvalidPeer;
  PeerId root = kInvalidPeer;  // initiating root, the accept/reject addressee
  std::uint64_t graft_id = 0;
};

/// One root->replica replication delta (kReplicaSyncKind, QoS 1 on the
/// dedicated replica hop layer). `sync_id` is globally unique: the
/// reliability token and the replica-side dedup key (a retransmitted
/// kPendingJoin must not book a second publish).
struct ReplicaSync {
  enum class What : std::uint8_t {
    kMember,        ///< `member` subscribed (also the bootstrap stream's unit)
    kUnmember,      ///< `member` unsubscribed or departed
    kRetain,        ///< root retained `wave` — replica mirrors it
    kPendingJoin,   ///< one publish joined the root's pending batch
    kPendingFlush,  ///< the pending batch flushed — replica drops its copy
  };
  GroupId group = 0;
  What what = What::kMember;
  PeerId member = kInvalidPeer;  // kMember / kUnmember
  GroupDelivery wave;            // kRetain: the retained range wave
  double accepted_at = 0.0;      // kPendingJoin: root-accept time
  std::uint64_t sync_id = 0;
};

// -- replica-shard coordination payloads (root_replicas > 1) ---------------
// All three ride the dedicated coord hop layer at QoS 1 (kCoordAckKind
// acks); `coord_id` is the globally unique reliability token AND the
// receiver-side dedup key, so a retransmitted lease cannot double-assign a
// range and a retransmitted handoff cannot drive a shard wave twice.

/// Slot root -> slot-0 authority: "assign me `count` dense seqs of `group`".
struct SeqLease {
  GroupId group = 0;
  std::uint32_t slot = 0;  // requesting slot
  std::uint64_t count = 0;
  std::uint64_t coord_id = 0;
};

/// Authority -> requesting slot root: the granted dense range. `lease_id`
/// echoes the lease's coord_id so the requester finds its buffered accept
/// times; `coord_id` is this grant's own token.
struct SeqGrant {
  GroupId group = 0;
  std::uint32_t slot = 0;
  std::uint64_t seq_lo = 0;
  std::uint64_t count = 0;
  std::uint64_t lease_id = 0;
  std::uint64_t coord_id = 0;
};

/// Committing slot root -> peer slot root: "drive [seq_lo, seq_hi] over
/// YOUR shard tree". One per non-origin slot per flush — the whole-group
/// wave becomes R shard waves, one per slot's pruned subtree.
struct ShardWave {
  GroupId group = 0;
  std::uint32_t slot = 0;  // the addressee's slot
  std::uint64_t seq_lo = 0;
  std::uint64_t seq_hi = 0;
  std::uint64_t coord_id = 0;
};

/// Prefix-batched graft carrier (PubSubConfig::graft_prefix_batch): several
/// same-instant descent steps sharing a (from, to) hop ride one acked
/// envelope. The first member's graft_id is the reliability token; the
/// receiver acks once and advances every member in order.
struct GraftBatch {
  std::vector<GraftEnvelope> grafts;
};

/// Root-driven idle beacon (kHeartbeatKind, fire-and-forget): the group's
/// highest flushed seq, forwarded down the carried tree snapshot like a
/// wave. `wave` is a real wave id (same dense space) so per-peer dedup and
/// latest-tree ordering work unchanged.
struct GroupHeartbeat {
  GroupId group = 0;
  std::uint64_t highest_seq = 0;
  std::uint64_t wave = 0;
  std::shared_ptr<const GroupTree> tree;
};

/// Knobs of the QoS 2 end-to-end repair plane (ignored below QoS 2).
struct RepairConfig {
  /// Quiet time between detecting a gap and NACKing it — and between
  /// repair rounds. Should comfortably exceed one per-hop ack timeout so
  /// QoS 1 recovery gets the first shot at every gap.
  double gap_timeout = 0.1;
  /// Extra NACK transmissions allowed per missing seq beyond one per
  /// ancestor (the chain itself sets the baseline — walking it is not a
  /// retry): slack for NACK/repair envelopes the network lost. A miss from
  /// the chain's end (the root) abandons the gap immediately — nobody
  /// farther out can serve it — so this bound only governs lossy reruns,
  /// and the window can never stall on an unservable gap.
  std::size_t max_nack_attempts = 8;
  /// Out-of-order waves a subscriber holds back per group before the
  /// window force-abandons its oldest gaps to release them.
  std::size_t reorder_limit = 256;
};

struct PubSubConfig {
  GroupConfig groups;
  /// Publish coalescing at the rendezvous root: publishes to the same
  /// group arriving within `batch_window` simulated seconds are merged
  /// into one tree wave carrying the sequence range they span. 0 (the
  /// default) disables coalescing — every publish flushes immediately on
  /// the historic single-seq path. The window is measured from the first
  /// buffered publish (a flush timer, not a sliding deadline), so worst-
  /// case added latency is exactly one window.
  double batch_window = 0.0;
  /// Publishes per wave before the buffer flushes early (a full batch
  /// must not wait out the window); also caps the range an envelope,
  /// a pending hop entry, and a retained-buffer slot can cover.
  std::size_t max_batch = 16;
  /// Replica-sharded roots: rendezvous-hash each group to this many anchor
  /// points and partition the root role across the nearest alive peer to
  /// each. Subscribers are owned by their nearest anchor's slot; control
  /// traffic targets the owner slot's root; each flush drives one pruned
  /// shard tree per slot, with a seq-lease protocol keeping (group, seq)
  /// globally unique and dense. 1 (the default) is the historic
  /// single-root pipeline, bit-identical to it on every seed — the oracle
  /// the R > 1 delivered sets are pinned against.
  std::size_t root_replicas = 1;
  /// Publisher-side batching: app messages published by one peer to one
  /// group within this window ride ONE kPublishKind envelope (carrying a
  /// count) to the root, multiplying with root-side coalescing. 0 (the
  /// default) disables it — bit-passive, the historic per-publish path.
  double publisher_batch_window = 0.0;
  /// App messages per publish envelope before the publisher's buffer
  /// flushes early (mirrors max_batch on the root side).
  std::size_t publisher_max_batch = 16;
  /// Graft prefix batching: same-instant routed descent steps sharing a
  /// (from, to) hop coalesce into one kGraftBatchKind carrier (one
  /// envelope, one ack) instead of one kGraftRequestKind each. Off (the
  /// default) keeps the historic one-envelope-per-descent path; the
  /// resulting trees are identical either way — only envelope counts
  /// change.
  bool graft_prefix_batch = false;
  sim::LatencyModel latency = sim::LatencyModel::constant(0.01);
  /// Extra stochastic loss on top of the always-on "departed peers drop
  /// everything" rule.
  sim::LossModel loss;
  /// Payload-path delivery guarantee: QoS 0 (the default) is the historic
  /// fire-and-forget tree push; QoS 1 acks every kDeliverKind hop and
  /// retransmits on timeout per `ack_timeout`/`max_retries`; QoS 2 adds
  /// subscriber-side gap detection and ancestor repair per `repair`.
  multicast::ReliabilityConfig reliability{multicast::QoS::kFireAndForget};
  RepairConfig repair;
  /// Subscribe path for roots holding a clean cached tree: true (the
  /// default) drives the zone descent with routed kGraftRequestKind
  /// envelopes — one real hop per descent decision, QoS 1, visible in
  /// NetworkStats; false runs GroupManager::subscribe's synchronous local
  /// descent (the golden oracle, bit-identical on lossless seeds).
  bool routed_graft = true;
  /// Warm root failover: every group root streams membership deltas,
  /// retained-range inserts, and pending-batch joins to the group's
  /// replica (kReplicaSyncKind, QoS 1), so root death promotes a warm
  /// successor that inherits the subscriber set, serves post-migration
  /// NACKs from replicated history, and adopts the pending batch. False
  /// (the default) keeps the historic cold rebuild — the oracle, and
  /// bit-identical to it on no-kill seeds.
  bool warm_failover = false;
  /// Root-driven session heartbeats (QoS 2 only): seconds between idle
  /// beacons after a flush; 0 (the default) disables them. Closes the
  /// final-wave blind spot — see the header comment.
  double heartbeat_interval = 0.0;
  /// Beacon rounds re-armed after each flush (their only redundancy —
  /// beacons are fire-and-forget); bounded so an idle group goes silent
  /// and run() terminates.
  std::size_t heartbeat_rounds = 2;
  /// Simulation-core fast path (the 100k-peer tentpole): true (the
  /// default) runs the hierarchical timer-wheel event queue, interval-set
  /// (group, seq) dedup, and dense per-(peer, group) window-slot storage;
  /// false keeps the historic binary-heap / per-seq-set / map core — the
  /// oracle the fast path is pinned bit-identical against
  /// (tests/groups_simcore_test.cpp): same delivered sets, byte-identical
  /// stats JSON, on every seed.
  bool sim_core = true;
  /// Deterministic sharded event loop (sim/simulator.hpp): partitions the
  /// peers into this many contiguous coordinate regions (overlay's
  /// grid_regions over the same bucket grid grid_knn searches), gives each
  /// region its own event queue + worker thread, and runs the conservative
  /// synchronized-window loop with lookahead = the latency model's minimum
  /// delay. Delivered tuples and all stats JSON are bit-identical to the
  /// single-threaded core for ANY value here; 1 (the default) IS the
  /// single-threaded core — the oracle the sharded battery pins against.
  /// Requires latency.min_delay() > 0 and, when the QoS layer is on,
  /// ack_timeout / repair.gap_timeout >= that minimum (worker-armed timers
  /// must land beyond the window bound); violations throw at construction.
  std::size_t sim_shards = 1;
  std::uint64_t seed = 1;
};

/// Pure per-(subscriber, group) sequencing state for QoS 2: tracks the
/// highest contiguous seq released so far, the set of missing seqs (gaps),
/// and the received-but-held-back out-of-order waves, releasing runs in
/// order as gaps fill or are abandoned. No timers, no I/O — the
/// PubSubSystem drives it from arrivals and owns the NACK machinery — so
/// it unit-tests in isolation (tests/groups_qos2_test.cpp).
///
/// The window initializes at the first seq observed (a late joiner must
/// not NACK the group's entire history); seqs below the head after that
/// are reported as pre-window and left to the caller to release out of
/// band. Duplicate filtering is the caller's job (the per-(group, seq)
/// dedup already exists): observe() assumes every call is a first sighting.
class SubscriberWindow {
 public:
  explicit SubscriberWindow(std::size_t reorder_limit = 256)
      : reorder_limit_(reorder_limit == 0 ? 1 : reorder_limit) {}

  struct Arrival {
    /// Seqs below the window head: release immediately out of band, no
    /// window change. A range straddling the head is split — the below-
    /// head part lands here, the rest runs through the window — so range
    /// admission never regresses the head.
    std::vector<std::uint64_t> pre_window;
    /// Seqs newly discovered missing (became gaps) by this arrival.
    std::vector<std::uint64_t> new_gaps;
    /// Seqs released in order by this arrival (includes the arrival itself
    /// when it was contiguous); empty means the arrival was held back.
    std::vector<std::uint64_t> released;
    /// Gaps the reorder bound forced the window to give up on (already
    /// excluded from `released` — they were never received).
    std::vector<std::uint64_t> forced_abandoned;
  };

  /// Records the arrival of `seq` and advances the window.
  [[nodiscard]] Arrival observe(std::uint64_t seq) { return observe_range(seq, seq); }

  /// Range admission: records the arrival of the dense seq range
  /// [lo, hi] (inclusive) in one call — the batched-wave hot path. The
  /// in-order case (range starts at the head, nothing held or missing)
  /// releases the whole range without touching the gap/held sets;
  /// otherwise the range splits into pre-window, gap-filling, and ahead-
  /// of-head parts with per-seq bookkeeping, so gap detection and NACKs
  /// stay per-seq while release is range-at-a-time.
  [[nodiscard]] Arrival observe_range(std::uint64_t lo, std::uint64_t hi);

  /// Gives up on missing `seq`: the window will skip it. Returns the seqs
  /// released by the skip (empty when an earlier gap still blocks the
  /// head). No-op (empty) when `seq` is not a gap.
  [[nodiscard]] std::vector<std::uint64_t> abandon(std::uint64_t seq);

  /// Horizon observation (the heartbeat path): every seq in [frontier, hi]
  /// the window has never admitted becomes a gap, exactly as if a later
  /// wave had revealed it; returns the fresh gaps for the caller to book
  /// and NACK. No-op on an uninitialized window — a beacon must not owe a
  /// late joiner the group's entire history.
  [[nodiscard]] std::vector<std::uint64_t> mark_through(std::uint64_t hi);

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }
  /// Lowest seq not yet released or skipped (the window head).
  [[nodiscard]] std::uint64_t next_expected() const noexcept { return next_expected_; }
  [[nodiscard]] std::size_t gap_count() const noexcept { return gaps_.size(); }
  [[nodiscard]] std::size_t held_count() const noexcept { return held_.size(); }
  [[nodiscard]] bool is_gap(std::uint64_t seq) const { return gaps_.count(seq) > 0; }

 private:
  /// Advances the head over held (release) and skipped (silently pass)
  /// seqs, appending released ones to `released`.
  void release_run(std::vector<std::uint64_t>& released);

  bool initialized_ = false;
  std::uint64_t next_expected_ = 0;
  /// One past the highest seq ever admitted. Every seq in
  /// [next_expected_, frontier_) is held, a gap, or skipped, so new gaps
  /// can only open at or above the frontier — the gap-marking loop starts
  /// there instead of rescanning from the head (O(new gaps) amortised,
  /// not O(reorder distance) per out-of-order arrival).
  std::uint64_t frontier_ = 0;
  std::set<std::uint64_t> held_;     // received, awaiting an earlier gap
  std::set<std::uint64_t> gaps_;     // missing, under repair
  std::set<std::uint64_t> skipped_;  // abandoned above the head, to pass over
  std::size_t reorder_limit_;
};

/// Owns the simulator, the per-peer protocol nodes, and the GroupManager.
/// Schedule a workload in virtual time, run(), then read the stats.
class PubSubSystem {
 public:
  PubSubSystem(const overlay::OverlayGraph& graph, PubSubConfig config = {});
  ~PubSubSystem();
  PubSubSystem(const PubSubSystem&) = delete;
  PubSubSystem& operator=(const PubSubSystem&) = delete;

  void subscribe_at(double time, PeerId peer, GroupId group);
  void unsubscribe_at(double time, PeerId peer, GroupId group);
  void publish_at(double time, PeerId peer, GroupId group);
  /// The peer stops responding at `time`; membership and trees are
  /// repaired through the GroupManager at the same instant.
  void depart_at(double time, PeerId peer);
  /// Same, effective immediately at the simulator's current time — the
  /// entry point for in-simulation failure injectors (schedule through
  /// this, not the bare GroupManager, so grafts aborted by the departure
  /// get their resubscribes issued).
  void depart_now(PeerId peer);

  /// Runs the event loop until idle; returns events processed.
  std::size_t run(std::size_t max_events = 50'000'000);

  /// Observer invoked on every application-level delivery (for QoS 2 that
  /// is in-order release time, not arrival time) — the hook the per-QoS
  /// ordering tests watch. Pass nullptr to clear.
  using DeliveryProbe =
      std::function<void(PeerId peer, GroupId group, std::uint64_t seq, double time)>;
  void set_delivery_probe(DeliveryProbe probe) { probe_ = std::move(probe); }

  /// Attaches a trace sink (nullptr detaches): every wave-lifecycle point —
  /// publish accept, root buffer/flush, per-hop send/retransmit/ack,
  /// delivery, gap detect/NACK/repair, graft step, tree maintenance — emits
  /// a structured obs::TraceEvent into it. Strictly passive: delivered
  /// sets, all stats, and the event schedule are bit-identical with and
  /// without a sink on the same seed (tests/obs_trace_test.cpp pins this);
  /// with no sink attached every emit site is one null-check.
  void set_trace_sink(obs::TraceSink* sink);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] GroupManager& manager() noexcept { return *manager_; }
  [[nodiscard]] GroupStats total_stats() const { return manager_->total_stats(); }
  [[nodiscard]] const GroupStats& stats(GroupId group) const {
    return std::as_const(*manager_).stats(group);
  }
  /// Data-plane per-hop reliability counters (the obs snapshot exports
  /// them alongside GroupStats/NetworkStats).
  [[nodiscard]] const multicast::HopStats& hop_stats() const noexcept {
    return hop_->stats();
  }
  [[nodiscard]] const PubSubConfig& config() const noexcept { return config_; }

  /// Frees the payload pool's cached blocks. Safe only once the run is
  /// idle (no live envelopes/retained handles still borrowing blocks is
  /// NOT required — handles keep their block; only the free cache is
  /// dropped). Bench drivers call this between cells so one cell's pool
  /// high-water mark doesn't sit resident while the next cell measures.
  ///
  /// Threading contract (see util/pool.hpp): the pool is single-writer.
  /// Under the sharded loop this must run from the coordinator between
  /// runs — never from a worker-lane context (workers only ever DROP
  /// handles, via the deferred-recycle list the barrier flushes).
  void release_pools() {
    assert(sim::Simulator::parallel_lane() < 0);
    payload_pool_.release();
  }

 private:
  class PubSubNode;
  friend class PubSubNode;

  /// Per-gap repair progress, owned by the system (the SubscriberWindow
  /// stays pure): when it was detected, how far up the ancestor chain the
  /// NACKs have escalated, and how many were sent.
  struct GapState {
    double detected_at = 0.0;
    std::size_t ancestor = 0;  // index into the current ancestor chain
    std::size_t attempts = 0;  // NACK transmissions so far
  };
  /// A subscriber's QoS 2 state for one group.
  struct WindowState {
    SubscriberWindow window;
    std::map<std::uint64_t, GapState> gaps;
    /// Snapshot of the newest wave seen — the source of the ancestor
    /// chain NACKs walk (trees drift across waves; newest wins, and a
    /// repair's resent old wave must not regress it).
    std::shared_ptr<const GroupTree> latest_tree;
    std::uint64_t latest_wave = 0;
    bool timer_armed = false;
  };

  /// Per-group publish coalescing buffer, conceptually resident at the
  /// rendezvous root: publishes join the pending batch until the window
  /// timer fires or the batch fills, then flush as one range wave. The
  /// buffer holds only a count — publishes carry no payload bytes here, so
  /// a batch is fully described by how many seqs it will span.
  struct PendingBatch {
    std::size_t count = 0;
    PeerId root = kInvalidPeer;  // the peer buffering (dies with it)
    sim::EventId timer = 0;      // window-flush timer, cancelled on early flush
    /// Root-accept time of each buffered publish, in join order — they map
    /// onto the flush's dense seq range for publish->delivery latency.
    /// Dropped with the batch when the buffering root dies.
    std::vector<double> accepted;
  };

  void schedule_control(double time, PeerId peer, GroupId group, sim::MessageKind kind);
  void handle_at_root(PeerId self, sim::MessageKind kind, const GroupRequest& request);
  void forward_control(PeerId self, sim::MessageKind kind, const GroupRequest& request);
  /// Books `count` publishes accepted at `self` (a slot root) and commits
  /// or buffers them per the batching knobs — the sharded (R > 1)
  /// counterpart of handle_at_root's publish arm.
  void shard_publish(PeerId self, GroupId group, std::uint32_t slot,
                     std::uint32_t count);
  void flush_shard_batch(GroupId group, std::uint32_t slot, bool window_expired);
  /// Commits `count` accepted publishes at `root` (slot `slot`): slot 0
  /// assigns the dense seq range locally (it IS the authority), any other
  /// slot leases one via kSeqLeaseKind and launches on the grant.
  void shard_commit(GroupId group, std::uint32_t slot, PeerId root,
                    std::uint64_t count, std::vector<double> accepted);
  /// A committed range fans out: every other alive slot root gets a
  /// kShardWaveKind handoff, then the origin drives its own shard tree.
  void launch_wave(GroupId group, std::uint32_t origin_slot, PeerId origin_root,
                   std::uint64_t seq_lo, std::uint64_t seq_hi);
  /// Drives [lo, hi] over `slot`'s shard tree from its root: fresh wave
  /// id, expected-delivery booking, dissemination, heartbeat re-arm.
  void drive_shard_wave(GroupId group, std::uint32_t slot, PeerId root,
                        std::uint64_t lo, std::uint64_t hi);
  void on_seq_lease(PeerId self, PeerId from, const SeqLease& lease);
  void on_seq_grant(PeerId self, PeerId from, const SeqGrant& grant);
  void on_shard_wave(PeerId self, PeerId from, const ShardWave& wave);
  /// Retry-budget exhaustion on the coord hop: a lease or handoff whose
  /// addressee died re-dispatches to the CURRENT authority / slot root
  /// (the promotion path), a lost grant is a documented seq hole.
  void on_coord_abandon(const std::any& payload);
  /// One coord-plane unicast (kind 35–37) on coord_hop_, charged as a
  /// control envelope.
  void coord_send(PeerId from, PeerId to, std::uint64_t token, std::any payload,
                  sim::MessageKind kind);
  /// Writes `accepted` into accept_times_[group] at [seq_lo, ...): grants
  /// land out of order across slots, so this assigns by index rather than
  /// appending.
  void record_accept_times(GroupId group, std::uint64_t seq_lo,
                           const std::vector<double>& accepted);
  // -- publisher-side batching ---------------------------------------------
  [[nodiscard]] bool publisher_batching() const noexcept {
    return config_.publisher_batch_window > 0.0 && config_.publisher_max_batch > 1;
  }
  void publisher_join(PeerId peer, GroupId group);
  void publisher_flush(PeerId peer, GroupId group);

  // -- routed graft control plane -----------------------------------------
  /// Root half of a graftable subscribe: registers the in-flight cursor
  /// and takes the first descent decision locally (the root IS the first
  /// decision point; no envelope is owed to reach yourself).
  void start_graft(PeerId root, GroupId group, PeerId subscriber);
  /// Takes one descent decision at `self` and acts on the outcome:
  /// descend (route the request on), attached (accept to the root), or
  /// failed (reject to the root / local abort when self is the root).
  void advance_graft(PeerId self, const GraftEnvelope& graft);
  void on_graft_request(PeerId self, PeerId from, const GraftEnvelope& graft);
  void on_graft_accept(PeerId self, PeerId from, const GraftEnvelope& graft);
  void on_graft_reject(PeerId self, PeerId from, const GraftEnvelope& graft);
  /// Prefix batching (graft_prefix_batch): queues a descent step for the
  /// per-instant (self -> next) outbox instead of sending immediately...
  void queue_graft(PeerId self, PeerId next, const GraftEnvelope& graft);
  /// ...and flushes `self`'s outbox at the same instant: singleton steps
  /// go out on the historic per-envelope path, >= 2 steps to one target
  /// merge into one kGraftBatchKind carrier.
  void flush_graft_outbox(PeerId self);
  /// Carrier receiver: ack once, advance every member in order.
  void on_graft_batch(PeerId self, PeerId from, const GraftBatch& batch);
  /// Abort + abort-and-resubscribe: gives the graft up through the
  /// manager (cache dirtied) and re-issues the subscribe from the
  /// subscriber when it survived — the liveness half of the state machine.
  void abort_graft(std::uint64_t graft_id);
  void resubscribe(GroupId group, PeerId subscriber);
  /// Pushes the group's pending batch down the tree as one range wave.
  /// `window_expired` selects the flush-reason counter (window timer vs.
  /// batch full). A batch whose buffering root died is dropped — those
  /// publishes died at the root exactly like unbatched publishes addressed
  /// to a dead root.
  void flush_batch(GroupId group, bool window_expired);
  /// Handles one arrival of a wave at `self` (`from == kInvalidPeer` for
  /// the root's own copy at publish time): ack, dedup, retain, deliver
  /// (QoS 2: through the window), forward. Range-aware end to end — a
  /// partially-duplicate range (a repair filled part of it first) delivers
  /// only the fresh seqs but still forwards the whole envelope.
  void disseminate(PeerId self, PeerId from, const DeliveryPtr& delivery_ptr);
  /// R > 1 wave handling. Differs from the legacy path in ONE load-bearing
  /// way: with R shard trees a peer can relay for several slots, so
  /// forwarding dedup is by wave id (unique per shard drive), while the
  /// (group, seq) dedup governs only local delivery — a subscriber is in
  /// exactly one shard tree, so delivery stays exact, and a second slot's
  /// tree is still forwarded instead of starved.
  void disseminate_sharded(PeerId self, PeerId from, const DeliveryPtr& delivery_ptr);
  /// Marks [lo, hi] of `group` seen at `self` and returns the contiguous
  /// runs of first-sighted seqs — the dedup step shared by the data plane
  /// and the repair plane (whole range fresh on the common path; empty
  /// means a pure duplicate). Only meaningful under QoS 1+ (seen_ sized).
  /// Returns a reference to a reusable scratch buffer (one live result at
  /// a time — no caller holds it across another dedup).
  [[nodiscard]] const std::vector<std::pair<std::uint64_t, std::uint64_t>>& fresh_runs(
      PeerId self, GroupId group, std::uint64_t lo, std::uint64_t hi);

  // -- QoS 2 repair plane -------------------------------------------------
  /// The (self, group) window state, or nullptr when this subscriber never
  /// consumed a wave of the group — the one shared lookup every repair-
  /// plane entry point starts from.
  [[nodiscard]] WindowState* find_window(PeerId self, GroupId group);
  /// Same, but created (uninitialized window, no snapshot) on first use —
  /// the data-plane admission path.
  [[nodiscard]] WindowState& ensure_window(PeerId self, GroupId group);
  /// Runs the fresh (non-duplicate) sub-range [lo, hi] of `delivery`
  /// through `self`'s window: detects gaps, arms the gap timer, releases
  /// in-order runs.
  void window_observe(PeerId self, const GroupDelivery& delivery, std::uint64_t lo,
                      std::uint64_t hi);
  /// Gap-timeout tick for one (subscriber, group): defers to in-flight
  /// per-hop recovery, else NACKs every outstanding gap (escalating those
  /// already tried) and abandons the ones out of attempts.
  void on_gap_timer(PeerId self, GroupId group);
  /// Responder half: serve retained seqs with kRepairKind, report the rest
  /// with kRepairMissKind.
  void on_nack(PeerId self, const GapNack& nack);
  /// A repaired wave arrived: dedup, then fill the gap through the window.
  void on_repair(PeerId self, const DeliveryPtr& delivery_ptr);
  /// The responder (`from`) lacked some seqs: escalate them past it
  /// immediately (no extra gap timeout). Level-aware: a miss from below a
  /// gap's current target is stale (several NACK rounds can be in flight)
  /// and ignored; a miss from the chain's end abandons the gap.
  void on_repair_miss(PeerId self, PeerId from, const GapRepairMiss& miss);

  /// Sends one batched NACK per distinct ancestor target for `seqs`
  /// (which must be outstanding gaps of (self, group)), bumping attempts
  /// and abandoning seqs whose budget is spent. `escalate` moves each
  /// already-tried gap one ancestor up first.
  void send_nacks(PeerId self, GroupId group, WindowState& ws,
                  const std::vector<std::uint64_t>& seqs, bool escalate);
  /// `self`'s ancestors in its latest wave snapshot, nearest first, dead
  /// peers skipped (the façade's immediate-departure rule doubles as a
  /// perfect failure detector, as everywhere else in this layer). Under
  /// warm failover the group's CURRENT root is appended when the
  /// snapshot's root died mid-repair — the promoted successor holds the
  /// replicated history the chain would otherwise dead-end short of.
  [[nodiscard]] std::vector<PeerId> ancestor_chain(PeerId self, GroupId group,
                                                   const WindowState& ws) const;

  // -- warm root failover ---------------------------------------------------
  [[nodiscard]] bool warm() const noexcept { return config_.warm_failover; }
  /// One delta to the group's replica: assigns sync id, books the cost
  /// (replica_sync_envelopes; plus migration_envelopes when `migration`),
  /// and sends on the replica hop layer. No-op when no replica exists.
  void replica_send(PeerId root, GroupId group, ReplicaSync sync, bool migration);
  /// Membership delta convenience (subscribe/unsubscribe/departure).
  void replica_sync_membership(PeerId root, GroupId group, PeerId member,
                               bool subscribed);
  /// Replica half: ack, dedup by sync id, apply — membership into the
  /// manager's replica copy, retains into the replica's own
  /// RetainedBuffer, pending joins into replica_pending_. Stale deliveries
  /// (this peer is no longer the group's replica) are dropped.
  void on_replica_sync(PeerId self, PeerId from, const ReplicaSync& sync);
  /// Streams the group's full root state — membership, retained ranges,
  /// pending batch — to a freshly assigned replica, one sync envelope per
  /// item (the handoff costs real messages). `migration` attributes the
  /// stream to migration_envelopes.
  void bootstrap_replica(GroupId group, bool migration);
  /// Post-migration half of depart_now: trace/count the promotion, adopt
  /// the replica's pending-batch copy at the new root (QoS 1+), and
  /// bootstrap the successor's own replica.
  void handle_promotion(const GroupManager::RootPromotion& promotion);

  // -- session heartbeats ---------------------------------------------------
  [[nodiscard]] bool heartbeats_enabled() const noexcept {
    return config_.heartbeat_interval > 0.0 && config_.heartbeat_rounds > 0 &&
           end_to_end();
  }
  /// (Re)arms a fresh round of beacons for the group — called after every
  /// flush; a newer flush's epoch invalidates older pending ticks.
  void schedule_heartbeat(GroupId group);
  void heartbeat_tick(GroupId group, std::uint64_t epoch);
  /// Issues one beacon from the group's current root down a fresh tree
  /// snapshot (post-promotion beacons therefore come from the successor).
  void send_heartbeat(GroupId group);
  /// Beacon processing at `self`: dedup by beacon wave id, mark the
  /// window through the advertised horizon (new gaps NACK as usual),
  /// forward to tree children.
  void on_heartbeat(PeerId self, const GroupHeartbeat& hb);
  void arm_gap_timer(PeerId self, GroupId group, WindowState& ws);
  /// Books an application-level delivery (counter + probe).
  void deliver_local(PeerId self, GroupId group, std::uint64_t seq);
  /// Dense-range variant of deliver_local — identical bookkeeping in the
  /// identical order, with the per-group lookups hoisted out of the loop
  /// (the QoS 0/1 subscriber hot path delivers whole batched ranges).
  void deliver_range(PeerId self, GroupId group, std::uint64_t lo, std::uint64_t hi);

  // -- sharded event loop ---------------------------------------------------
  /// Wires the simulator's sharded loop when sim_shards >= 2: region
  /// assignment (grid_regions -> worker lanes 1..K; lane 0 is the
  /// sequential control lane), envelope routing, per-lane stat sinks, the
  /// ext replay channel, and the barrier collapse hook. Validates the
  /// lookahead preconditions (see PubSubConfig::sim_shards).
  void setup_shards();
  /// Envelope -> home lane. Payload traffic (kDeliverKind / kDeliverAckKind
  /// / kHeartbeatKind) runs on the destination peer's region lane; EVERY
  /// other kind — publish/flush/subscribe, graft, NACK/repair, replica
  /// sync — is control traffic on lane 0, executed only at globally
  /// quiesced instants, so all root-side and repair-plane state keeps its
  /// single-writer discipline with no striping at all.
  static std::uint32_t route_thunk(void* ctx, const sim::Envelope& envelope);
  static void ext_thunk(void* ctx, std::uint64_t a, std::uint64_t b, std::uint64_t c,
                        double v);
  static void barrier_thunk(void* ctx);
  /// Ext-record ops (packed into the record's `a` as op << 48 | peer):
  /// the two delivery-path effects whose floating-point accumulation order
  /// must match the classic loop exactly, so workers log them and the
  /// coordinator replays them in canonical order at the barrier.
  static constexpr std::uint64_t kExtDeliver = 1;    // b=group c=seq v=time
  static constexpr std::uint64_t kExtGapRepair = 2;  // b=group c=seq v=latency
  /// The FP-ordered tail of a delivery: publish->delivery latency sample
  /// plus the probe. Runs inline on the coordinator, via ext on a worker.
  void emit_delivery(PeerId self, GroupId group, std::uint64_t seq);
  void apply_delivery(PeerId self, GroupId group, std::uint64_t seq, double time);
  /// Barrier collapse: folds the per-lane NetworkStats / GroupStats /
  /// trace-event deltas into the shared aggregates (workers are parked).
  void on_barrier();
  /// Removes a gap as repaired/abandoned, with latency accounting; for
  /// abandoned gaps also advances the window and releases what it frees.
  void finish_gap(PeerId self, GroupId group, WindowState& ws, std::uint64_t seq,
                  bool repaired);

  [[nodiscard]] bool acked() const noexcept {
    return multicast::requires_ack(config_.reliability.qos);
  }
  [[nodiscard]] bool end_to_end() const noexcept {
    return config_.reliability.qos == multicast::QoS::kEndToEnd;
  }
  [[nodiscard]] bool batching() const noexcept {
    return config_.batch_window > 0.0 && config_.max_batch > 1;
  }
  [[nodiscard]] bool sharded() const noexcept { return config_.root_replicas > 1; }

  const overlay::OverlayGraph& graph_;
  PubSubConfig config_;
  /// Recycles the refcount+payload block behind every wave's DeliveryPtr.
  /// Declared before every member that can hold a payload (simulator
  /// envelopes, hop-layer pending tables, the manager's retained buffers):
  /// members destroy in reverse order, so the pool outlives all of its
  /// handles.
  util::RcPool<GroupDelivery> payload_pool_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<GroupManager> manager_;
  std::unique_ptr<multicast::ReliableHopLayer> hop_;
  /// Graft control hops: always QoS 1 (ack kGraftAckKind, retransmit on
  /// timeout) whatever the data plane runs at — a lost descent envelope
  /// must retry, not strand the subscriber. One layer carries all three
  /// graft kinds; graft ids keep the (from, to, seq) key space disjoint.
  std::unique_ptr<multicast::ReliableHopLayer> graft_hop_;
  /// Warm-failover replication stream: always QoS 1 like the graft plane
  /// (a lost delta must retry — the replica's copy is only as good as the
  /// stream), sync ids keying the (from, to, seq) space. Built only when
  /// warm_failover is on.
  std::unique_ptr<multicast::ReliableHopLayer> replica_hop_;
  /// Replica-shard coordination stream (root_replicas > 1 only): seq
  /// leases/grants and shard-wave handoffs among a group's slot roots,
  /// always QoS 1 like the graft plane — coordination must retry, not
  /// silently drop a committed range.
  std::unique_ptr<multicast::ReliableHopLayer> coord_hop_;
  std::vector<std::unique_ptr<PubSubNode>> nodes_;
  std::map<GroupId, std::uint64_t> next_seq_;
  std::map<GroupId, PendingBatch> pending_batch_;
  /// R > 1 counterpart of pending_batch_, one buffer per (group, slot):
  /// each slot root coalesces the publishes IT ingests; the legacy map
  /// stays untouched so the R == 1 path is bit-identical.
  std::map<std::pair<GroupId, std::uint32_t>, PendingBatch> shard_pending_;
  /// A non-authority slot root's accepted publishes awaiting their seq
  /// grant, keyed by the lease's coord_id.
  struct PendingLease {
    GroupId group = 0;
    std::uint32_t slot = 0;
    PeerId root = kInvalidPeer;
    std::vector<double> accepted;
  };
  std::map<std::uint64_t, PendingLease> lease_pending_;
  /// Highest seq each slot root has driven over its shard tree — the
  /// per-slot heartbeat horizon. A global next_seq_ horizon would advertise
  /// seqs a slot root has not yet received via its kShardWaveKind handoff,
  /// tricking subscribers into NACKs that miss at the root and abandon.
  std::map<std::pair<GroupId, std::uint32_t>, std::uint64_t> shard_horizon_;
  std::uint64_t next_coord_id_ = 1;
  /// Per-peer coord ids already applied (lease/grant/handoff dedup). Sized
  /// only when sharded.
  std::vector<std::set<std::uint64_t>> coord_seen_;
  /// Per-peer wave ids already forwarded — the sharded data plane's
  /// forwarding dedup (see disseminate_sharded). Sized only when sharded.
  std::vector<std::set<std::uint64_t>> wave_seen_;
  /// Publisher-side batching buffers, keyed (publisher, group).
  struct PublisherBatch {
    std::size_t count = 0;
    sim::EventId timer = 0;
  };
  std::map<std::pair<PeerId, GroupId>, PublisherBatch> publisher_pending_;
  /// Per-peer same-instant graft outbox (graft_prefix_batch only): descent
  /// steps queued by next-hop target, flushed by a zero-delay event.
  std::vector<std::map<PeerId, std::vector<GraftEnvelope>>> graft_outbox_;
  std::uint64_t next_wave_ = 0;
  /// Per-peer (group, seq) pairs already processed — the QoS 1+ dedup that
  /// tells a retransmission (or duplicate repair) from fresh data. Unused
  /// (empty) under QoS 0, where snapshot-tree forwarding makes duplicates
  /// impossible. Grows O(waves a peer relays) for the simulation's
  /// lifetime: an entry is only needed while the parent's retransmission
  /// window is open, but the receiver cannot observe that locally.
  std::vector<std::set<std::pair<GroupId, std::uint64_t>>> seen_;
  /// sim_core replacement for seen_: disjoint inclusive seq ranges already
  /// processed, per (peer, group) — O(log ranges) per wave instead of one
  /// set node per seq, so a batched range wave dedups in one splice and
  /// memory stays O(gaps), not O(delivered seqs). Exactly one of
  /// seen_/seen_ranges_ is sized (by the sim_core knob); both produce the
  /// identical fresh_runs output for the same arrival history.
  std::vector<std::map<GroupId, std::map<std::uint64_t, std::uint64_t>>> seen_ranges_;
  /// fresh_runs result buffers, reused across calls so the per-hop dedup
  /// never allocates. One per lane (Simulator::scratch_lane() indexes;
  /// slot 0 covers the classic loop and every coordinator-side context),
  /// so concurrent worker-lane dedups never share a buffer.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> fresh_scratch_;
  /// Memoized greedy control steps, keyed (self << 32 | target). A pure
  /// function of the alive-set, so depart_now() flushes it; everything
  /// else (subscribes, promotions, grafts) leaves liveness untouched.
  std::unordered_map<std::uint64_t, PeerId> route_cache_;
  /// Per-peer QoS 2 windows, one per group the peer consumed from.
  std::vector<std::map<GroupId, WindowState>> windows_;
  /// Per-peer graft ids whose descent step already ran here — the dedup
  /// that keeps a retransmitted kGraftRequestKind from replaying a
  /// decision (a descent visits each peer at most once, so the id alone
  /// is the key). Sized only when routed_graft is on.
  std::vector<std::set<std::uint64_t>> graft_seen_;
  /// Per-peer sync ids already applied — the dedup that keeps a
  /// retransmitted (non-idempotent) kPendingJoin from double-booking.
  /// Sized only when warm_failover is on.
  std::vector<std::set<std::uint64_t>> sync_seen_;
  std::uint64_t next_sync_id_ = 1;
  /// The replica's copy of its group's pending batch (count + accept
  /// times), fed by kPendingJoin/kPendingFlush syncs and consumed at
  /// promotion. Keyed by group: the manager guarantees one replica per
  /// group, and stale syncs are dropped before reaching this map.
  struct ReplicaPending {
    std::size_t count = 0;
    std::vector<double> accepted;
  };
  std::map<GroupId, ReplicaPending> replica_pending_;
  /// Per-group beacon scheduling: rounds left in the current post-flush
  /// burst, and an epoch counter that invalidates ticks a newer flush
  /// superseded (so timers never need cancelling).
  struct HeartbeatState {
    std::uint64_t epoch = 0;
    std::size_t rounds_left = 0;
  };
  std::map<GroupId, HeartbeatState> heartbeat_;
  /// Per-peer beacon wave ids already processed (forwarding dedup). Sized
  /// only when heartbeats are enabled.
  std::vector<std::set<std::uint64_t>> hb_seen_;
  DeliveryProbe probe_;
  // -- observability (all passive; maintained identically with tracing on
  // or off so attaching a sink cannot perturb a seeded run) ---------------
  obs::Tracer tracer_;
  /// Per-group root-accept time of every seq assigned so far (seqs are
  /// dense from 0, so the vector index IS the seq) — the publish side of
  /// the publish->delivery latency histogram.
  std::map<GroupId, std::vector<double>> accept_times_;
  /// Wave id -> group (wave ids are dense from 0): lets the hop-ack trace
  /// tap attribute an ack — which carries only the wave id — to its group.
  std::vector<GroupId> wave_groups_;
  /// Sharded loop (empty/null unless sim_shards >= 2): each peer's home
  /// lane (1..K; the route thunk reads it per payload envelope), and the
  /// attached sink so the barrier hook can collapse its lane buffers.
  std::vector<std::uint32_t> node_lane_;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace geomcast::groups
