// Message-driven publish/subscribe over the geometric overlay — the
// protocol layer of the groups subsystem, running on the discrete-event
// Simulator with real latency/loss, alongside the §2 construction protocol
// (multicast/protocol.hpp) whose kBuildRequestKind these kinds extend.
//
// Control plane: subscribe/unsubscribe/publish envelopes are forwarded hop
// by hop toward the group's rendezvous root with greedy geometric routing
// (overlay/routing.hpp); each hop uses only local information plus the
// group id carried by the envelope. Data plane: the root resolves the
// group's cached pruned tree through the GroupManager and pushes the
// payload down it, one kDeliverKind envelope per tree edge; every peer
// forwards to its current tree children (the forwarding state the build
// wave installed) and consumes the payload iff subscribed, with per-
// (group, seq) duplicate suppression.
//
// The data plane has a QoS ladder (PubSubConfig::reliability): QoS 0 is
// fire-and-forget, QoS 1 runs every kDeliverKind hop through the shared
// per-hop reliability layer (multicast/reliable_hop.hpp) — each hop is
// acked with kDeliverAckKind, the forwarding peer retransmits to its tree
// children on timeout up to a retry budget, and per-(group, seq) dedup
// suppresses retransmission duplicates (re-acked, never re-delivered or
// re-forwarded).
//
// Departures take effect immediately: the network drops envelopes
// addressed to departed peers, greedy forwarding routes around them, and
// the GroupManager repairs or invalidates the affected trees. Tree
// build/repair accounting stays in GroupStats (control-plane bookkeeping);
// the simulator's NetworkStats count the routed control and payload
// envelopes that actually crossed links, plus the reliability layer's
// retransmitted/duplicate/abandoned tallies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "groups/group_manager.hpp"
#include "multicast/reliable_hop.hpp"
#include "sim/simulator.hpp"

namespace geomcast::groups {

/// Message kinds, continuing the registry started by
/// multicast::kBuildRequestKind (10) / kDataKind (11) / kAckKind (12).
inline constexpr sim::MessageKind kSubscribeKind = 20;
inline constexpr sim::MessageKind kUnsubscribeKind = 21;
inline constexpr sim::MessageKind kPublishKind = 22;
inline constexpr sim::MessageKind kDeliverKind = 23;
inline constexpr sim::MessageKind kDeliverAckKind = 24;

/// Control envelope routed toward a group root.
struct GroupRequest {
  GroupId group = 0;
  PeerId origin = kInvalidPeer;  // subscriber / publisher
  PeerId target = kInvalidPeer;  // rendezvous root at send time
};

/// Payload envelope travelling down a group tree. Each wave carries an
/// immutable snapshot of the tree it was published on (the forwarding
/// state "installed" for that wave, the way §2 build requests carry
/// zones): grafts/prunes/repairs landing mid-wave affect later publishes
/// only, so delivery accounting is exact against the snapshot. The
/// snapshot lives as long as some envelope of the wave is in flight.
struct GroupDelivery {
  GroupId group = 0;
  std::uint64_t seq = 0;  // per-group publish sequence number
  /// System-wide wave id — the reliability layer's ack token. Unique across
  /// groups (per-group seqs are not), so concurrent waves of different
  /// groups traversing the same link can never cancel each other's timers.
  std::uint64_t wave = 0;
  std::shared_ptr<const GroupTree> tree;
};

struct PubSubConfig {
  GroupConfig groups;
  sim::LatencyModel latency = sim::LatencyModel::constant(0.01);
  /// Extra stochastic loss on top of the always-on "departed peers drop
  /// everything" rule.
  sim::LossModel loss;
  /// Payload-path delivery guarantee: QoS 0 (the default) is the historic
  /// fire-and-forget tree push; QoS 1 acks every kDeliverKind hop and
  /// retransmits on timeout per `ack_timeout`/`max_retries`.
  multicast::ReliabilityConfig reliability{multicast::QoS::kFireAndForget};
  std::uint64_t seed = 1;
};

/// Owns the simulator, the per-peer protocol nodes, and the GroupManager.
/// Schedule a workload in virtual time, run(), then read the stats.
class PubSubSystem {
 public:
  PubSubSystem(const overlay::OverlayGraph& graph, PubSubConfig config = {});
  ~PubSubSystem();
  PubSubSystem(const PubSubSystem&) = delete;
  PubSubSystem& operator=(const PubSubSystem&) = delete;

  void subscribe_at(double time, PeerId peer, GroupId group);
  void unsubscribe_at(double time, PeerId peer, GroupId group);
  void publish_at(double time, PeerId peer, GroupId group);
  /// The peer stops responding at `time`; membership and trees are
  /// repaired through the GroupManager at the same instant.
  void depart_at(double time, PeerId peer);

  /// Runs the event loop until idle; returns events processed.
  std::size_t run(std::size_t max_events = 50'000'000);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] GroupManager& manager() noexcept { return *manager_; }
  [[nodiscard]] GroupStats total_stats() const { return manager_->total_stats(); }
  [[nodiscard]] const GroupStats& stats(GroupId group) const {
    return std::as_const(*manager_).stats(group);
  }

 private:
  class PubSubNode;
  friend class PubSubNode;

  void schedule_control(double time, PeerId peer, GroupId group, sim::MessageKind kind);
  void handle_at_root(PeerId self, sim::MessageKind kind, const GroupRequest& request);
  void forward_control(PeerId self, sim::MessageKind kind, const GroupRequest& request);
  /// Handles one arrival of a wave at `self` (`from == kInvalidPeer` for
  /// the root's own copy at publish time): ack, dedup, deliver, forward.
  void disseminate(PeerId self, PeerId from, const GroupDelivery& delivery);
  [[nodiscard]] bool acked() const noexcept {
    return config_.reliability.qos == multicast::QoS::kAcked;
  }

  const overlay::OverlayGraph& graph_;
  PubSubConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<GroupManager> manager_;
  std::unique_ptr<multicast::ReliableHopLayer> hop_;
  std::vector<std::unique_ptr<PubSubNode>> nodes_;
  std::map<GroupId, std::uint64_t> next_seq_;
  std::uint64_t next_wave_ = 0;
  /// Per-peer (group, seq) pairs already processed — the QoS 1 dedup that
  /// tells a retransmission duplicate from fresh data. Unused (empty) under
  /// QoS 0, where snapshot-tree forwarding makes duplicates impossible.
  /// Grows O(waves a peer relays) for the simulation's lifetime: an entry
  /// is only needed while the parent's retransmission window is open, but
  /// the receiver cannot observe that locally. The QoS 2 follow-on's
  /// per-group sequence windows (ROADMAP) subsume this with a bounded
  /// sliding window.
  std::vector<std::set<std::pair<GroupId, std::uint64_t>>> seen_;
};

}  // namespace geomcast::groups
