// Message-driven publish/subscribe over the geometric overlay — the
// protocol layer of the groups subsystem, running on the discrete-event
// Simulator with real latency/loss, alongside the §2 construction protocol
// (multicast/protocol.hpp) whose kBuildRequestKind these kinds extend.
//
// Control plane: subscribe/unsubscribe/publish envelopes are forwarded hop
// by hop toward the group's rendezvous root with greedy geometric routing
// (overlay/routing.hpp); each hop uses only local information plus the
// group id carried by the envelope. Data plane: the root resolves the
// group's cached pruned tree through the GroupManager and pushes the
// payload down it, one kDeliverKind envelope per tree edge; every peer
// forwards to its current tree children (the forwarding state the build
// wave installed) and consumes the payload iff subscribed, with per-
// (group, seq) duplicate suppression.
//
// Departures take effect immediately: the network drops envelopes
// addressed to departed peers, greedy forwarding routes around them, and
// the GroupManager repairs or invalidates the affected trees. Tree
// build/repair accounting stays in GroupStats (control-plane bookkeeping);
// the simulator's NetworkStats count the routed control and payload
// envelopes that actually crossed links.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "groups/group_manager.hpp"
#include "sim/simulator.hpp"

namespace geomcast::groups {

/// Message kinds, continuing the registry started by
/// multicast::kBuildRequestKind (10) / kDataKind (11) / kAckKind (12).
inline constexpr sim::MessageKind kSubscribeKind = 20;
inline constexpr sim::MessageKind kUnsubscribeKind = 21;
inline constexpr sim::MessageKind kPublishKind = 22;
inline constexpr sim::MessageKind kDeliverKind = 23;

/// Control envelope routed toward a group root.
struct GroupRequest {
  GroupId group = 0;
  PeerId origin = kInvalidPeer;  // subscriber / publisher
  PeerId target = kInvalidPeer;  // rendezvous root at send time
};

/// Payload envelope travelling down a group tree. Each wave carries an
/// immutable snapshot of the tree it was published on (the forwarding
/// state "installed" for that wave, the way §2 build requests carry
/// zones): grafts/prunes/repairs landing mid-wave affect later publishes
/// only, so delivery accounting is exact against the snapshot. The
/// snapshot lives as long as some envelope of the wave is in flight.
struct GroupDelivery {
  GroupId group = 0;
  std::uint64_t seq = 0;  // per-group publish sequence number
  std::shared_ptr<const GroupTree> tree;
};

struct PubSubConfig {
  GroupConfig groups;
  sim::LatencyModel latency = sim::LatencyModel::constant(0.01);
  /// Extra stochastic loss on top of the always-on "departed peers drop
  /// everything" rule.
  sim::LossModel loss;
  std::uint64_t seed = 1;
};

/// Owns the simulator, the per-peer protocol nodes, and the GroupManager.
/// Schedule a workload in virtual time, run(), then read the stats.
class PubSubSystem {
 public:
  PubSubSystem(const overlay::OverlayGraph& graph, PubSubConfig config = {});
  ~PubSubSystem();
  PubSubSystem(const PubSubSystem&) = delete;
  PubSubSystem& operator=(const PubSubSystem&) = delete;

  void subscribe_at(double time, PeerId peer, GroupId group);
  void unsubscribe_at(double time, PeerId peer, GroupId group);
  void publish_at(double time, PeerId peer, GroupId group);
  /// The peer stops responding at `time`; membership and trees are
  /// repaired through the GroupManager at the same instant.
  void depart_at(double time, PeerId peer);

  /// Runs the event loop until idle; returns events processed.
  std::size_t run(std::size_t max_events = 50'000'000);

  [[nodiscard]] sim::Simulator& simulator() noexcept { return *sim_; }
  [[nodiscard]] GroupManager& manager() noexcept { return *manager_; }
  [[nodiscard]] GroupStats total_stats() const { return manager_->total_stats(); }
  [[nodiscard]] const GroupStats& stats(GroupId group) const {
    return std::as_const(*manager_).stats(group);
  }

 private:
  class PubSubNode;
  friend class PubSubNode;

  void schedule_control(double time, PeerId peer, GroupId group, sim::MessageKind kind);
  void handle_at_root(PeerId self, sim::MessageKind kind, const GroupRequest& request);
  void forward_control(PeerId self, sim::MessageKind kind, const GroupRequest& request);
  void disseminate(PeerId self, const GroupDelivery& delivery);

  const overlay::OverlayGraph& graph_;
  PubSubConfig config_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<GroupManager> manager_;
  std::vector<std::unique_ptr<PubSubNode>> nodes_;
  std::map<GroupId, std::uint64_t> next_seq_;
};

}  // namespace geomcast::groups
