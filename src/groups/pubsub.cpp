#include "groups/pubsub.hpp"

#include <algorithm>
#include <any>
#include <stdexcept>

#include "overlay/grid_knn.hpp"
#include "overlay/routing.hpp"

namespace geomcast::groups {

namespace {
/// The façade's root_replicas knob rides into the manager's GroupConfig so
/// slots/anchors have one source of truth (0 is normalized to 1 — "no
/// sharding" — like every other off-value in this config family).
GroupConfig sharded_group_config(const PubSubConfig& config) {
  GroupConfig groups = config.groups;
  groups.root_replicas = config.root_replicas > 1 ? config.root_replicas : 1;
  return groups;
}
}  // namespace

void SubscriberWindow::release_run(std::vector<std::uint64_t>& released) {
  while (true) {
    if (held_.erase(next_expected_) > 0) {
      released.push_back(next_expected_);
      ++next_expected_;
    } else if (skipped_.erase(next_expected_) > 0) {
      ++next_expected_;  // abandoned earlier: pass over silently
    } else {
      break;
    }
  }
}

SubscriberWindow::Arrival SubscriberWindow::observe_range(std::uint64_t lo,
                                                          std::uint64_t hi) {
  Arrival arrival;
  if (lo > hi) return arrival;
  if (!initialized_) {
    // Late joiners start at whatever wave reaches them first; the history
    // before it was never owed to this window.
    initialized_ = true;
    next_expected_ = lo;
    frontier_ = lo;
  }
  // Split off the below-head part (init race or an abandoned gap whose
  // copy finally straggled in): release out of band, window unchanged.
  for (; lo <= hi && lo < next_expected_; ++lo) arrival.pre_window.push_back(lo);
  if (lo > hi) return arrival;
  if (lo == next_expected_ && gaps_.empty() && held_.empty() && skipped_.empty()) {
    // The batching hot path: an in-order range with a clean window
    // releases wholesale, no per-seq set traffic at all.
    for (std::uint64_t s = lo; s <= hi; ++s) arrival.released.push_back(s);
    next_expected_ = hi + 1;
    frontier_ = std::max(frontier_, next_expected_);
    return arrival;
  }
  for (std::uint64_t seq = lo; seq <= hi; ++seq) {
    if (seq < next_expected_) {
      // The head overtook this still-unprocessed seq mid-range (a forced
      // abandonment ran past it, or release_run passed an earlier-skipped
      // seq): below the head now, so out of band like any pre-window seq.
      arrival.pre_window.push_back(seq);
      continue;
    }
    if (gaps_.erase(seq) > 0) {
      // A gap filled (by repair, or by per-hop recovery winning the race).
      if (seq == next_expected_) {
        arrival.released.push_back(seq);
        ++next_expected_;
        release_run(arrival.released);
      } else {
        held_.insert(seq);
      }
      continue;
    }
    if (seq == next_expected_) {
      arrival.released.push_back(seq);
      ++next_expected_;
      release_run(arrival.released);
      continue;
    }
    // Ahead of the head: everything between becomes a gap, the arrival is
    // held back for in-order release. Everything below the frontier is
    // already held, a gap, or skipped, so only [frontier_, seq) is new —
    // no membership probes, no rescan of the reorder distance.
    for (std::uint64_t m = std::max(next_expected_, frontier_); m < seq; ++m) {
      gaps_.insert(gaps_.end(), m);
      arrival.new_gaps.push_back(m);
    }
    held_.insert(seq);
    // Bounded hold-back: when the buffer overflows, the oldest gaps are
    // the blockers — give up on them rather than grow without bound. The
    // head is always a gap here (otherwise it would have been released).
    while (held_.size() > reorder_limit_) {
      const std::uint64_t head = next_expected_;
      gaps_.erase(head);
      arrival.forced_abandoned.push_back(head);
      ++next_expected_;
      release_run(arrival.released);
    }
    frontier_ = std::max(frontier_, seq + 1);
  }
  return arrival;
}

std::vector<std::uint64_t> SubscriberWindow::abandon(std::uint64_t seq) {
  std::vector<std::uint64_t> released;
  if (gaps_.erase(seq) == 0) return released;
  if (seq == next_expected_) {
    ++next_expected_;
    release_run(released);
  } else {
    skipped_.insert(seq);  // passed over silently once the head gets there
  }
  return released;
}

std::vector<std::uint64_t> SubscriberWindow::mark_through(std::uint64_t hi) {
  std::vector<std::uint64_t> fresh;
  if (!initialized_) return fresh;  // a beacon owes a late joiner nothing
  // Everything below the frontier is already held, a gap, or skipped —
  // only [frontier_, hi] can be newly missing, exactly as in observe_range.
  for (std::uint64_t m = std::max(next_expected_, frontier_); m <= hi; ++m) {
    gaps_.insert(gaps_.end(), m);
    fresh.push_back(m);
  }
  if (hi + 1 > frontier_) frontier_ = hi + 1;
  return fresh;
}

/// One simulated peer: dispatches the pub/sub kinds to the system's
/// handlers. All protocol state lives in the system/manager (the per-root
/// state each envelope addresses), keeping the node a thin actor shell
/// like multicast/protocol.cpp's MulticastNode.
class PubSubSystem::PubSubNode final : public sim::Node {
 public:
  PubSubNode(PeerId id, PubSubSystem& system) : sim::Node(id), system_(system) {}

  void on_message(sim::Simulator& sim, const sim::Envelope& envelope) override {
    (void)sim;
    // The send-time drop rule cannot catch a departure that happens while
    // the envelope is in flight; a dead peer must not act on anything.
    if (!system_.manager_->alive(id())) return;
    switch (envelope.kind) {
      case kSubscribeKind:
      case kUnsubscribeKind:
      case kPublishKind: {
        const auto& request = std::any_cast<const GroupRequest&>(envelope.payload);
        if (id() == request.target)
          system_.handle_at_root(id(), envelope.kind, request);
        else
          system_.forward_control(id(), envelope.kind, request);
        return;
      }
      case kDeliverKind: {
        system_.disseminate(id(), envelope.from,
                            std::any_cast<const DeliveryPtr&>(envelope.payload));
        return;
      }
      case kDeliverAckKind: {
        system_.hop_->on_ack(envelope);
        return;
      }
      case kNackKind: {
        system_.on_nack(id(), std::any_cast<const GapNack&>(envelope.payload));
        return;
      }
      case kRepairKind: {
        system_.on_repair(id(), std::any_cast<const DeliveryPtr&>(envelope.payload));
        return;
      }
      case kRepairMissKind: {
        system_.on_repair_miss(id(), envelope.from,
                               std::any_cast<const GapRepairMiss&>(envelope.payload));
        return;
      }
      case kGraftRequestKind: {
        system_.on_graft_request(id(), envelope.from,
                                 std::any_cast<const GraftEnvelope&>(envelope.payload));
        return;
      }
      case kGraftAcceptKind: {
        system_.on_graft_accept(id(), envelope.from,
                                std::any_cast<const GraftEnvelope&>(envelope.payload));
        return;
      }
      case kGraftRejectKind: {
        system_.on_graft_reject(id(), envelope.from,
                                std::any_cast<const GraftEnvelope&>(envelope.payload));
        return;
      }
      case kGraftAckKind: {
        system_.graft_hop_->on_ack(envelope);
        return;
      }
      case kReplicaSyncKind: {
        system_.on_replica_sync(id(), envelope.from,
                                std::any_cast<const ReplicaSync&>(envelope.payload));
        return;
      }
      case kReplicaAckKind: {
        system_.replica_hop_->on_ack(envelope);
        return;
      }
      case kHeartbeatKind: {
        system_.on_heartbeat(id(),
                             std::any_cast<const GroupHeartbeat&>(envelope.payload));
        return;
      }
      case kSeqLeaseKind: {
        system_.on_seq_lease(id(), envelope.from,
                             std::any_cast<const SeqLease&>(envelope.payload));
        return;
      }
      case kSeqGrantKind: {
        system_.on_seq_grant(id(), envelope.from,
                             std::any_cast<const SeqGrant&>(envelope.payload));
        return;
      }
      case kShardWaveKind: {
        system_.on_shard_wave(id(), envelope.from,
                              std::any_cast<const ShardWave&>(envelope.payload));
        return;
      }
      case kCoordAckKind: {
        system_.coord_hop_->on_ack(envelope);
        return;
      }
      case kGraftBatchKind: {
        system_.on_graft_batch(id(), envelope.from,
                               std::any_cast<const GraftBatch&>(envelope.payload));
        return;
      }
      default:
        throw std::logic_error("PubSubNode: unexpected message kind");
    }
  }

 private:
  PubSubSystem& system_;
};

PubSubSystem::PubSubSystem(const overlay::OverlayGraph& graph, PubSubConfig config)
    : graph_(graph),
      config_(std::move(config)),
      sim_(std::make_unique<sim::Simulator>(config_.seed,
                                            config_.sim_core
                                                ? sim::QueueBackend::kWheel
                                                : sim::QueueBackend::kHeap)),
      manager_(std::make_unique<GroupManager>(graph, sharded_group_config(config_))) {
  // The manager needs the simulated clock for graft latency accounting
  // (begin -> attach). Wired unconditionally — latency histograms are
  // stats, not tracing, so they must be identical with or without a sink.
  manager_->set_clock([this]() { return sim_->now(); });
  sim_->network().set_latency(config_.latency);
  // Departed peers silently drop everything addressed to them, on top of
  // whatever stochastic loss the caller injected.
  sim::LossModel loss;
  loss.drop_probability = config_.loss.drop_probability;
  loss.drop_if = [this](const sim::Envelope& envelope) {
    if (!manager_->alive(envelope.to)) return true;
    return config_.loss.drop_if && config_.loss.drop_if(envelope);
  };
  sim_->network().set_loss(std::move(loss));

  // Payload hops run through the shared reliability layer (a passthrough
  // under QoS 0). Retransmissions/abandonments are attributed to the wave's
  // group through the hooks; a forwarder that departs with hops pending
  // stops retransmitting (its subtree's loss is churn, not budget, so it is
  // not charged as abandoned).
  multicast::ReliableHopLayer::Hooks hooks;
  hooks.on_retransmit = [this](sim::NodeId, sim::NodeId, std::uint64_t,
                               const std::any& payload) {
    const auto& delivery = std::any_cast<const DeliveryPtr&>(payload);
    ++manager_->stats(delivery->group).retransmissions;
  };
  hooks.on_abandon = [this](sim::NodeId, sim::NodeId, std::uint64_t,
                            const std::any& payload) {
    const auto& delivery = std::any_cast<const DeliveryPtr&>(payload);
    ++manager_->stats(delivery->group).abandoned_hops;
  };
  hooks.sender_alive = [this](sim::NodeId p) { return manager_->alive(p); };
  hop_ = std::make_unique<multicast::ReliableHopLayer>(
      *sim_, kDeliverKind, kDeliverAckKind, config_.reliability, std::move(hooks));
  if (acked()) {
    if (config_.sim_core)
      seen_ranges_.resize(graph.size());
    else
      seen_.resize(graph.size());
  }
  if (end_to_end()) windows_.resize(graph.size());

  if (config_.routed_graft) {
    // Graft control hops are ALWAYS acked (QoS 1), whatever the data plane
    // runs at: a lost descent envelope must retransmit, not strand the
    // subscriber. An abandoned hop (receiver died, or budget spent against
    // persistent loss) aborts the whole graft — the abort dirties the
    // cache and re-issues the subscribe, so the subscriber converges
    // through the rebuild path instead.
    multicast::ReliableHopLayer::Hooks graft_hooks;
    // Both hooks type-test for a prefix-batched carrier first: a GraftBatch
    // retries or dies as a unit, so every member is charged/aborted. With
    // graft_prefix_batch off no carrier ever exists and the cast is a
    // guaranteed-miss null test in front of the historic path.
    graft_hooks.on_retransmit = [this](sim::NodeId, sim::NodeId, std::uint64_t,
                                       const std::any& payload) {
      if (const auto* batch = std::any_cast<GraftBatch>(&payload)) {
        for (const GraftEnvelope& graft : batch->grafts) {
          ++manager_->stats(graft.group).graft_retries;
          sim_->network().note_graft_retry();
        }
        return;
      }
      const auto& graft = std::any_cast<const GraftEnvelope&>(payload);
      ++manager_->stats(graft.group).graft_retries;
      sim_->network().note_graft_retry();
    };
    graft_hooks.on_abandon = [this](sim::NodeId, sim::NodeId, std::uint64_t,
                                    const std::any& payload) {
      if (const auto* batch = std::any_cast<GraftBatch>(&payload)) {
        for (const GraftEnvelope& graft : batch->grafts) abort_graft(graft.graft_id);
        return;
      }
      abort_graft(std::any_cast<const GraftEnvelope&>(payload).graft_id);
    };
    graft_hooks.sender_alive = [this](sim::NodeId p) { return manager_->alive(p); };
    graft_hop_ = std::make_unique<multicast::ReliableHopLayer>(
        *sim_, kGraftRequestKind, kGraftAckKind,
        multicast::ReliabilityConfig{multicast::QoS::kAcked,
                                     config_.reliability.ack_timeout,
                                     config_.reliability.max_retries},
        std::move(graft_hooks));
    graft_seen_.resize(graph.size());
    if (config_.graft_prefix_batch) graft_outbox_.resize(graph.size());
  }

  if (sharded()) {
    // Slot-root coordination (seq leases/grants, shard-wave handoffs) is
    // ALWAYS acked like the graft plane: a committed range must reach its
    // peer slot roots or be re-dispatched, never silently drop. The abandon
    // hook is the re-dispatch path — addressee died, retries spent, so the
    // payload re-routes to the CURRENT authority / slot root.
    multicast::ReliableHopLayer::Hooks coord_hooks;
    coord_hooks.on_abandon = [this](sim::NodeId, sim::NodeId, std::uint64_t,
                                    const std::any& payload) {
      on_coord_abandon(payload);
    };
    coord_hooks.sender_alive = [this](sim::NodeId p) { return manager_->alive(p); };
    coord_hop_ = std::make_unique<multicast::ReliableHopLayer>(
        *sim_, kSeqLeaseKind, kCoordAckKind,
        multicast::ReliabilityConfig{multicast::QoS::kAcked,
                                     config_.reliability.ack_timeout,
                                     config_.reliability.max_retries},
        std::move(coord_hooks));
    coord_seen_.resize(graph.size());
    wave_seen_.resize(graph.size());
  }

  if (warm()) {
    // The replication stream is ALWAYS acked (QoS 1) like the graft plane:
    // the replica's copy is only as good as the stream, so a lost delta
    // must retry. An abandoned sync (the replica died mid-stream) needs no
    // hook — the departure sweep re-bootstraps a successor regardless.
    multicast::ReliableHopLayer::Hooks replica_hooks;
    replica_hooks.on_retransmit = [this](sim::NodeId, sim::NodeId, std::uint64_t,
                                         const std::any& payload) {
      const auto& sync = std::any_cast<const ReplicaSync&>(payload);
      ++manager_->stats(sync.group).replica_sync_retries;
    };
    replica_hooks.sender_alive = [this](sim::NodeId p) { return manager_->alive(p); };
    replica_hop_ = std::make_unique<multicast::ReliableHopLayer>(
        *sim_, kReplicaSyncKind, kReplicaAckKind,
        multicast::ReliabilityConfig{multicast::QoS::kAcked,
                                     config_.reliability.ack_timeout,
                                     config_.reliability.max_retries},
        std::move(replica_hooks));
    sync_seen_.resize(graph.size());
  }
  if (heartbeats_enabled()) hb_seen_.resize(graph.size());

  // Slot 0 serves the classic loop and every coordinator-side context;
  // setup_shards widens this to one slot per lane.
  fresh_scratch_.resize(1);

  nodes_.reserve(graph.size());
  for (PeerId p = 0; p < graph.size(); ++p) {
    nodes_.push_back(std::make_unique<PubSubNode>(p, *this));
    sim_->add_node(*nodes_[p]);
  }
  setup_shards();
}

void PubSubSystem::setup_shards() {
  if (config_.sim_shards <= 1) return;
  const std::size_t workers = std::min(config_.sim_shards, graph_.size());
  if (workers <= 1) return;
  // Conservative-window preconditions. The lookahead is the latency
  // model's minimum delay: every worker-side send lands at least that far
  // in the future, past the window bound. Worker-armed TIMERS get no such
  // physics for free, so the two timer delays armed from worker contexts
  // (per-hop ack timeout, QoS 2 gap timeout) must each cover one lookahead.
  const double lookahead = sim_->network().min_delay();
  if (lookahead <= 0.0)
    throw std::invalid_argument(
        "PubSubConfig::sim_shards: latency model needs a positive minimum "
        "delay (the sharded loop's lookahead)");
  if (acked() && config_.reliability.ack_timeout < lookahead)
    throw std::invalid_argument(
        "PubSubConfig::sim_shards: ack_timeout must be >= the latency "
        "model's minimum delay");
  if (end_to_end() && config_.repair.gap_timeout < lookahead)
    throw std::invalid_argument(
        "PubSubConfig::sim_shards: repair.gap_timeout must be >= the "
        "latency model's minimum delay");
  // Region assignment: contiguous coordinate bands off the same bucket
  // grid the overlay build walks, one worker lane per band (lane 0 is the
  // control lane).
  const auto regions = overlay::grid_regions(graph_.points(), workers);
  node_lane_.assign(graph_.size(), 0);
  for (PeerId p = 0; p < graph_.size(); ++p) node_lane_[p] = regions[p] + 1;
  sim_->configure_shards(workers, &PubSubSystem::route_thunk, this);
  sim_->set_ext_handler(&PubSubSystem::ext_thunk, this);
  sim_->set_barrier_hook(&PubSubSystem::barrier_thunk, this);
  // Per-lane stat sinks: worker-context writes land in lane deltas the
  // barrier hook collapses; coordinator-context writes go straight to the
  // shared aggregates as ever.
  sim_->network().configure_lanes(workers + 1, &sim::Simulator::parallel_lane);
  manager_->configure_lanes(workers + 1, &sim::Simulator::parallel_lane);
  // The data plane's per-hop state splits by the SENDER's home lane (the
  // whole send/timeout/ack cycle of a hop runs in that lane); the graft
  /// and replica planes are pure control traffic and stay single-lane.
  hop_->configure_lanes(node_lane_);
  fresh_scratch_.resize(workers + 1);
}

std::uint32_t PubSubSystem::route_thunk(void* ctx, const sim::Envelope& envelope) {
  auto* system = static_cast<PubSubSystem*>(ctx);
  switch (envelope.kind) {
    case kDeliverKind:
    case kDeliverAckKind:
    case kHeartbeatKind:
      return system->node_lane_[envelope.to];
    default:
      return 0;
  }
}

void PubSubSystem::ext_thunk(void* ctx, std::uint64_t a, std::uint64_t b,
                             std::uint64_t c, double v) {
  auto* system = static_cast<PubSubSystem*>(ctx);
  const std::uint64_t op = a >> 48;
  const PeerId peer = static_cast<PeerId>(a & ((std::uint64_t{1} << 48) - 1));
  switch (op) {
    case kExtDeliver:
      system->apply_delivery(peer, b, c, v);
      return;
    case kExtGapRepair: {
      GroupStats& stats = system->manager_->stats(b);
      stats.gap_latency_total += v;
      stats.gap_repair_latency.record(v);
      return;
    }
    default:
      throw std::logic_error("PubSubSystem: unknown ext op");
  }
}

void PubSubSystem::barrier_thunk(void* ctx) {
  static_cast<PubSubSystem*>(ctx)->on_barrier();
}

void PubSubSystem::on_barrier() {
  sim_->network().collapse_lane_deltas();
  manager_->collapse_lane_stats();
  if (trace_sink_ != nullptr) trace_sink_->collapse_lanes();
}

PubSubSystem::~PubSubSystem() = default;

void PubSubSystem::set_trace_sink(obs::TraceSink* sink) {
  trace_sink_ = sink;
  tracer_.attach(sink);
  manager_->set_trace_sink(sink);
  if (!node_lane_.empty() && sink != nullptr) {
    // Worker-context trace records land in per-lane buffers and are merged
    // deterministically at each barrier; same (time, order) sort key at
    // every shard count.
    sink->configure_lanes(sim_->worker_lanes() + 1, &sim::Simulator::parallel_lane,
                          &sim::Simulator::parallel_order);
  }
  // The hop layer's trace taps are installed only while a sink is attached:
  // with tracing off the hooks are empty std::functions and the fast path
  // pays a single bool test per transmit.
  multicast::ReliableHopLayer::TraceHooks taps;
  if (sink != nullptr) {
    taps.on_transmit = [this](sim::NodeId from, sim::NodeId to, std::uint64_t,
                              std::size_t attempt, const std::any& payload) {
      const auto& delivery = *std::any_cast<const DeliveryPtr&>(payload);
      tracer_.emit({sim_->now(),
                    attempt > 0 ? obs::TraceEventType::kHopRetransmit
                                : obs::TraceEventType::kHopSend,
                    delivery.group, delivery.wave, delivery.seq, delivery.seq_hi,
                    static_cast<std::uint32_t>(from), static_cast<std::uint32_t>(to)});
    };
    taps.on_ack_sent = [this](sim::NodeId self, sim::NodeId sender,
                              std::uint64_t wave) {
      // Acks carry only the wave id; wave_groups_ (maintained
      // unconditionally at wave creation) recovers the group.
      const GroupId group = wave < wave_groups_.size() ? wave_groups_[wave] : 0;
      tracer_.emit({sim_->now(), obs::TraceEventType::kHopAck, group, wave, 0, 0,
                    static_cast<std::uint32_t>(self),
                    static_cast<std::uint32_t>(sender)});
    };
  }
  hop_->set_trace_hooks(std::move(taps));
}

void PubSubSystem::forward_control(PeerId self, sim::MessageKind kind,
                                   const GroupRequest& request) {
  GroupStats& stats = manager_->stats(request.group);
  // The greedy step is a pure function of (self, target, alive-set), and
  // the alive-set only changes on departures — memoize it and flush the
  // cache in depart_now(). Control traffic converges on a handful of
  // rendezvous targets, so shared path prefixes hit constantly.
  PeerId next;
  const std::uint64_t route_key =
      (static_cast<std::uint64_t>(self) << 32) | request.target;
  const auto cached = route_cache_.find(route_key);
  if (cached != route_cache_.end()) {
    next = cached->second;
  } else {
    next = overlay::greedy_next_hop(
        graph_, self, request.target, [this](PeerId q) { return manager_->alive(q); });
    route_cache_.emplace(route_key, next);
  }
  if (next == kInvalidPeer) {
    ++stats.stranded_messages;
    return;
  }
  ++stats.control_messages;
  sim_->network().note_control_envelope();
  sim_->send(self, next, kind, request);
}

void PubSubSystem::handle_at_root(PeerId self, sim::MessageKind kind,
                                  const GroupRequest& request) {
  switch (kind) {
    case kSubscribeKind: {
      // The origin may have departed while its request was in flight; a
      // dead peer must not (re)enter the membership.
      if (!manager_->alive(request.origin)) return;
      // Only a FRESH membership change owes the replica a delta — routed
      // resubscribes and duplicate requests are no-ops there.
      const bool fresh =
          warm() && !manager_->is_subscribed(request.group, request.origin);
      if (config_.routed_graft) {
        // Membership is booked here; the tree splice — when one is owed —
        // becomes a routed descent instead of root-local work.
        if (manager_->subscribe_membership(request.group, request.origin) ==
            GroupManager::SubscribeNeed::kGraft)
          start_graft(self, request.group, request.origin);
      } else {
        manager_->subscribe(request.group, request.origin);
      }
      if (fresh) replica_sync_membership(self, request.group, request.origin, true);
      return;
    }
    case kUnsubscribeKind: {
      const bool fresh =
          warm() && manager_->is_subscribed(request.group, request.origin);
      manager_->unsubscribe(request.group, request.origin);
      if (fresh) replica_sync_membership(self, request.group, request.origin, false);
      return;
    }
    case kPublishKind: {
      GroupStats& stats = manager_->stats(request.group);
      // `n` is the publisher-batch factor: 1 on the historic path, the app
      // message count behind one envelope when the publisher coalesced.
      const std::uint32_t n = request.count > 0 ? request.count : 1;
      stats.publishes += n;
      if (sharded()) {
        // `self` is the ORIGIN's owner-slot root: it ingests the publish,
        // coalesces locally, and commits through the seq-lease protocol.
        shard_publish(self, request.group,
                      manager_->owner_slot(request.group, request.origin), n);
        return;
      }
      if (!batching()) {
        if (n == 1) {
          // Immediate flush: the historic single-seq wave, bit-identical to
          // the unbatched pipeline (no buffer, no timer, same send order).
          const auto snapshot = manager_->tree_snapshot(request.group);
          if (snapshot == nullptr) return;  // nobody subscribed
          stats.expected_deliveries += snapshot->reached_subscribers;
          const std::uint64_t seq = next_seq_[request.group]++;
          const std::uint64_t wave = next_wave_++;
          // Accept-time and wave->group bookkeeping is unconditional: the
          // latency histograms must be identical with or without a sink.
          accept_times_[request.group].push_back(sim_->now());
          wave_groups_.push_back(request.group);
          if (tracer_.enabled()) {
            tracer_.emit({sim_->now(), obs::TraceEventType::kPublishAccepted,
                          request.group, wave, seq, seq, self, request.origin});
            tracer_.emit({sim_->now(), obs::TraceEventType::kRootFlush,
                          request.group, wave, seq, seq, self});
          }
          disseminate(self, kInvalidPeer,
                      payload_pool_.make(
                          GroupDelivery{request.group, seq, seq, wave, snapshot}));
          if (heartbeats_enabled()) schedule_heartbeat(request.group);
          return;
        }
        // Publisher-batched arrival without root coalescing: the envelope's
        // n app messages flush as one dense range wave at once.
        const auto snapshot = manager_->tree_snapshot(request.group);
        if (snapshot == nullptr) return;  // nobody subscribed
        stats.expected_deliveries +=
            static_cast<std::uint64_t>(n) * snapshot->reached_subscribers;
        std::uint64_t& next = next_seq_[request.group];
        const std::uint64_t seq_lo = next;
        next += n;
        const std::uint64_t wave = next_wave_++;
        auto& times = accept_times_[request.group];
        times.insert(times.end(), n, sim_->now());
        wave_groups_.push_back(request.group);
        const std::uint64_t saved = static_cast<std::uint64_t>(n - 1) *
                                    snapshot->tree.edge_count() * (acked() ? 2 : 1);
        stats.envelopes_saved += saved;
        sim_->network().note_batched_wave(saved);
        if (tracer_.enabled()) {
          tracer_.emit({sim_->now(), obs::TraceEventType::kPublishAccepted,
                        request.group, wave, seq_lo, seq_lo + n - 1, self,
                        request.origin});
          tracer_.emit({sim_->now(), obs::TraceEventType::kRootFlush,
                        request.group, wave, seq_lo, seq_lo + n - 1, self});
        }
        disseminate(self, kInvalidPeer,
                    payload_pool_.make(GroupDelivery{request.group, seq_lo,
                                                     seq_lo + n - 1, wave,
                                                     snapshot}));
        if (heartbeats_enabled()) schedule_heartbeat(request.group);
        return;
      }
      PendingBatch& batch = pending_batch_[request.group];
      if (batch.count > 0 && !manager_->alive(batch.root)) {
        // The buffering root died with publishes pending: they died with
        // it (exactly like unbatched publishes addressed to a dead root).
        // `self` is the migrated-to root starting a fresh buffer; the dead
        // root's window timer must not flush it early.
        stats.batch_publishes_lost += batch.count;
        batch.count = 0;
        batch.accepted.clear();
        sim_->cancel(batch.timer);
      }
      const bool first = batch.count == 0;
      batch.count += n;
      stats.batched_publishes += n;
      for (std::uint32_t i = 0; i < n; ++i) batch.accepted.push_back(sim_->now());
      if (warm() && acked()) {
        // The replica shadows the pending buffer join by join, so a warm
        // promotion can adopt the batch instead of dropping it. QoS 0
        // keeps the historic loss — fire-and-forget publishes have no
        // delivery promise a failover would be preserving.
        for (std::uint32_t i = 0; i < n; ++i) {
          ReplicaSync sync;
          sync.what = ReplicaSync::What::kPendingJoin;
          sync.accepted_at = sim_->now();
          replica_send(self, request.group, std::move(sync), false);
        }
      }
      if (tracer_.enabled()) {
        tracer_.emit({sim_->now(), obs::TraceEventType::kPublishAccepted,
                      request.group, obs::kNoWave, 0, 0, self, request.origin});
        // seq_lo doubles as buffer occupancy after this accept.
        tracer_.emit({sim_->now(), obs::TraceEventType::kRootBuffer, request.group,
                      obs::kNoWave, batch.count, batch.count, self});
      }
      if (first) {
        batch.root = self;
        batch.timer = sim_->schedule_after(
            config_.batch_window,
            [this, group = request.group]() { flush_batch(group, true); });
      }
      if (batch.count >= config_.max_batch) {
        sim_->cancel(batch.timer);
        flush_batch(request.group, false);
      }
      return;
    }
    default:
      throw std::logic_error("PubSubSystem: control kind expected");
  }
}

void PubSubSystem::start_graft(PeerId root, GroupId group, PeerId subscriber) {
  const std::uint64_t id = manager_->graft_begin(group, subscriber, root);
  if (id == 0) return;  // a descent is already in flight, or the tree raced away
  // The root IS the first decision point: its step runs locally (no
  // envelope is owed to reach yourself), and only the handoff to the next
  // descent peer goes on the wire.
  advance_graft(root, GraftEnvelope{group, subscriber, root, id});
}

void PubSubSystem::advance_graft(PeerId self, const GraftEnvelope& graft) {
  const auto advance = manager_->graft_advance(graft.graft_id, self);
  GroupStats& stats = manager_->stats(graft.group);
  switch (advance.status) {
    case GroupManager::GraftAdvance::Status::kDescend:
      if (config_.graft_prefix_batch) {
        // Same-instant descents sharing this (self -> next) hop merge into
        // one carrier; the zero-delay outbox flush preserves the instant.
        queue_graft(self, advance.next, graft);
        return;
      }
      ++stats.graft_hops;
      sim_->network().note_graft_hop();
      if (tracer_.enabled())
        tracer_.emit({sim_->now(), obs::TraceEventType::kGraftStep, graft.group,
                      graft.graft_id, 0, 0, self, advance.next});
      graft_hop_->send(self, advance.next, graft.graft_id, graft, kGraftRequestKind);
      return;
    case GroupManager::GraftAdvance::Status::kAttached:
      if (self == graft.root) {
        // Zero-hop graft (re-subscribe / relay promotion / root itself):
        // nothing descended, so there is nobody to report back from.
        manager_->graft_finish(graft.graft_id);
      } else {
        sim_->network().note_control_envelope();
        graft_hop_->send(self, graft.root, graft.graft_id, graft, kGraftAcceptKind);
      }
      return;
    case GroupManager::GraftAdvance::Status::kFailed:
      if (self == graft.root) {
        abort_graft(graft.graft_id);
      } else {
        sim_->network().note_control_envelope();
        graft_hop_->send(self, graft.root, graft.graft_id, graft, kGraftRejectKind);
      }
      return;
  }
}

void PubSubSystem::on_graft_request(PeerId self, PeerId from, const GraftEnvelope& graft) {
  // Ack first, dedup second: the duplicate's arrival means our previous
  // ack may have been the lost envelope, but a descent decision must run
  // exactly once per peer however many copies land.
  graft_hop_->acknowledge(self, from, graft.graft_id);
  // Suppressed silently: duplicate_data is the DATA plane's counter, and
  // the sender half of this event is already visible as graft_retries.
  if (!graft_seen_[self].insert(graft.graft_id).second) return;
  advance_graft(self, graft);
}

void PubSubSystem::on_graft_accept(PeerId self, PeerId from, const GraftEnvelope& graft) {
  graft_hop_->acknowledge(self, from, graft.graft_id);
  // Idempotent: a retransmitted accept — or one that raced a departure
  // sweep's abort — finds the entry gone and changes nothing.
  manager_->graft_finish(graft.graft_id);
}

void PubSubSystem::on_graft_reject(PeerId self, PeerId from, const GraftEnvelope& graft) {
  graft_hop_->acknowledge(self, from, graft.graft_id);
  abort_graft(graft.graft_id);
}

void PubSubSystem::abort_graft(std::uint64_t graft_id) {
  const auto aborted = manager_->graft_abort(graft_id);
  if (!aborted) return;  // already retired (duplicate reject, raced sweep)
  sim_->network().note_graft_abort();
  resubscribe(aborted->group, aborted->subscriber);
}

void PubSubSystem::resubscribe(GroupId group, PeerId subscriber) {
  // Abort-and-resubscribe: the subscriber re-enters through the normal
  // subscribe path (routed to the CURRENT root — it may have migrated
  // since). The abort already dirtied the cache, so the usual outcome is
  // membership-only + rebuild on next publish; the re-issue exists for
  // the migration races where the new root's view needs the nudge.
  if (!manager_->alive(subscriber) || !manager_->is_subscribed(group, subscriber))
    return;  // died or unsubscribed mid-graft: nothing owed
  ++manager_->stats(group).graft_resubscribes;
  const GroupRequest request{group, subscriber,
                             sharded() ? manager_->owner_root(group, subscriber)
                                       : manager_->root_of(group)};
  if (subscriber == request.target)
    handle_at_root(subscriber, kSubscribeKind, request);
  else
    forward_control(subscriber, kSubscribeKind, request);
}

void PubSubSystem::queue_graft(PeerId self, PeerId next, const GraftEnvelope& graft) {
  auto& outbox = graft_outbox_[self];
  const bool was_empty = outbox.empty();
  outbox[next].push_back(graft);
  // One flush event per (peer, instant): armed when the first step lands,
  // zero-delay so it runs after every same-instant descent has queued.
  if (was_empty)
    sim_->schedule_after(0.0, [this, self]() { flush_graft_outbox(self); });
}

void PubSubSystem::flush_graft_outbox(PeerId self) {
  auto outbox = std::move(graft_outbox_[self]);
  graft_outbox_[self].clear();
  if (outbox.empty()) return;
  if (!manager_->alive(self)) {
    // Died between queueing and the flush: these descents are exactly the
    // ones a departure sweep would have aborted mid-hop.
    for (auto& [next, grafts] : outbox)
      for (const GraftEnvelope& graft : grafts) abort_graft(graft.graft_id);
    return;
  }
  for (auto& [next, grafts] : outbox) {
    GroupStats& stats = manager_->stats(grafts.front().group);
    if (grafts.size() == 1) {
      // Singleton: the historic per-envelope path, identical counters.
      const GraftEnvelope& graft = grafts.front();
      ++stats.graft_hops;
      sim_->network().note_graft_hop();
      if (tracer_.enabled())
        tracer_.emit({sim_->now(), obs::TraceEventType::kGraftStep, graft.group,
                      graft.graft_id, 0, 0, self, next});
      graft_hop_->send(self, next, graft.graft_id, graft, kGraftRequestKind);
      continue;
    }
    // >= 2 same-instant steps to one target: one carrier, one ack. The hop
    // is charged once (to the front member's group — it owns the token).
    ++stats.graft_hops;
    sim_->network().note_graft_hop();
    ++stats.graft_prefix_batches;
    stats.graft_prefix_merged += grafts.size() - 1;
    if (tracer_.enabled())
      for (const GraftEnvelope& graft : grafts)
        tracer_.emit({sim_->now(), obs::TraceEventType::kGraftStep, graft.group,
                      graft.graft_id, 0, 0, self, next});
    const std::uint64_t token = grafts.front().graft_id;
    graft_hop_->send(self, next, token, GraftBatch{std::move(grafts)},
                     kGraftBatchKind);
  }
}

void PubSubSystem::on_graft_batch(PeerId self, PeerId from, const GraftBatch& batch) {
  if (batch.grafts.empty()) return;
  // One ack covers the carrier (its token is the front member's graft id);
  // members dedup individually — a retransmitted carrier must not replay
  // any member's descent decision.
  graft_hop_->acknowledge(self, from, batch.grafts.front().graft_id);
  for (const GraftEnvelope& graft : batch.grafts) {
    if (!graft_seen_[self].insert(graft.graft_id).second) continue;
    advance_graft(self, graft);
  }
}

void PubSubSystem::flush_batch(GroupId group, bool window_expired) {
  const auto it = pending_batch_.find(group);
  if (it == pending_batch_.end() || it->second.count == 0) return;
  const std::size_t count = it->second.count;
  const PeerId root = it->second.root;
  // Accept times travel with the buffer: lost or subscriber-less batches
  // drop them alongside the publishes (no seqs are assigned, so the
  // accept_times_ <-> seq correspondence stays exact).
  std::vector<double> accepted = std::move(it->second.accepted);
  it->second.count = 0;
  it->second.accepted.clear();
  GroupStats& stats = manager_->stats(group);
  if (!manager_->alive(root)) {
    // Nothing migrates a pending buffer here: it was state of the dead
    // root. Under warm failover the promotion path adopted (or retired)
    // the buffer at departure time, so this branch only fires cold.
    stats.batch_publishes_lost += count;
    return;
  }
  if (warm() && acked()) {
    // The batch is consumed from here on, whether or not a wave goes out:
    // the replica's copy must not outlive it (a stale copy would hand a
    // later promotion phantom publishes).
    ReplicaSync sync;
    sync.what = ReplicaSync::What::kPendingFlush;
    replica_send(root, group, std::move(sync), false);
  }
  const auto snapshot = manager_->tree_snapshot(group);
  if (snapshot == nullptr) return;  // nobody subscribed (publishes counted)
  ++(window_expired ? stats.batch_flushes_window : stats.batch_flushes_full);
  stats.batch_occupancy_sum += count;
  stats.expected_deliveries +=
      static_cast<std::uint64_t>(count) * snapshot->reached_subscribers;
  // Envelope amortisation: unbatched, each of the `count` publishes would
  // have paid one payload envelope per tree edge (and one ack per edge at
  // QoS 1+); the batch pays each edge once.
  const std::uint64_t saved = static_cast<std::uint64_t>(count - 1) *
                              snapshot->tree.edge_count() * (acked() ? 2 : 1);
  stats.envelopes_saved += saved;
  sim_->network().note_batched_wave(saved);
  std::uint64_t& next = next_seq_[group];
  const std::uint64_t seq_lo = next;
  next += count;
  const std::uint64_t wave = next_wave_++;
  auto& times = accept_times_[group];
  times.insert(times.end(), accepted.begin(), accepted.end());
  wave_groups_.push_back(group);
  if (tracer_.enabled())
    tracer_.emit({sim_->now(), obs::TraceEventType::kRootFlush, group, wave,
                  seq_lo, seq_lo + count - 1, root});
  disseminate(root, kInvalidPeer,
              payload_pool_.make(
                  GroupDelivery{group, seq_lo, seq_lo + count - 1, wave, snapshot}));
  if (heartbeats_enabled()) schedule_heartbeat(group);
}

void PubSubSystem::shard_publish(PeerId self, GroupId group, std::uint32_t slot,
                                 std::uint32_t count) {
  GroupStats& stats = manager_->stats(group);
  if (!batching()) {
    shard_commit(group, slot, self, count,
                 std::vector<double>(count, sim_->now()));
    return;
  }
  // Per-(group, slot) coalescing buffer — the PR 4 pipeline run locally at
  // each slot root over the publishes IT ingests.
  PendingBatch& batch = shard_pending_[{group, slot}];
  if (batch.count > 0 && !manager_->alive(batch.root)) {
    stats.batch_publishes_lost += batch.count;
    batch.count = 0;
    batch.accepted.clear();
    sim_->cancel(batch.timer);
  }
  const bool first = batch.count == 0;
  batch.count += count;
  stats.batched_publishes += count;
  for (std::uint32_t i = 0; i < count; ++i) batch.accepted.push_back(sim_->now());
  if (slot == 0 && warm() && acked()) {
    // Only the authority slot participates in warm failover — its replica
    // shadows its buffer; other slots' buffers die cold with their root.
    for (std::uint32_t i = 0; i < count; ++i) {
      ReplicaSync sync;
      sync.what = ReplicaSync::What::kPendingJoin;
      sync.accepted_at = sim_->now();
      replica_send(self, group, std::move(sync), false);
    }
  }
  if (tracer_.enabled()) {
    tracer_.emit({sim_->now(), obs::TraceEventType::kPublishAccepted, group,
                  obs::kNoWave, 0, 0, self});
    tracer_.emit({sim_->now(), obs::TraceEventType::kRootBuffer, group,
                  obs::kNoWave, batch.count, batch.count, self});
  }
  if (first) {
    batch.root = self;
    batch.timer = sim_->schedule_after(
        config_.batch_window,
        [this, group, slot]() { flush_shard_batch(group, slot, true); });
  }
  if (batch.count >= config_.max_batch) {
    sim_->cancel(batch.timer);
    flush_shard_batch(group, slot, false);
  }
}

void PubSubSystem::flush_shard_batch(GroupId group, std::uint32_t slot,
                                     bool window_expired) {
  const auto it = shard_pending_.find({group, slot});
  if (it == shard_pending_.end() || it->second.count == 0) return;
  const std::size_t count = it->second.count;
  const PeerId root = it->second.root;
  std::vector<double> accepted = std::move(it->second.accepted);
  it->second.count = 0;
  it->second.accepted.clear();
  GroupStats& stats = manager_->stats(group);
  if (!manager_->alive(root)) {
    stats.batch_publishes_lost += count;
    return;
  }
  if (slot == 0 && warm() && acked()) {
    ReplicaSync sync;
    sync.what = ReplicaSync::What::kPendingFlush;
    replica_send(root, group, std::move(sync), false);
  }
  ++(window_expired ? stats.batch_flushes_window : stats.batch_flushes_full);
  stats.batch_occupancy_sum += count;
  shard_commit(group, slot, root, count, std::move(accepted));
}

void PubSubSystem::shard_commit(GroupId group, std::uint32_t slot, PeerId root,
                                std::uint64_t count, std::vector<double> accepted) {
  if (slot == 0) {
    // The authority assigns its own dense range locally — no lease round
    // trip; slot 0 IS the seq counter's home.
    std::uint64_t& next = next_seq_[group];
    const std::uint64_t seq_lo = next;
    next += count;
    record_accept_times(group, seq_lo, accepted);
    launch_wave(group, 0, root, seq_lo, seq_lo + count - 1);
    return;
  }
  GroupStats& stats = manager_->stats(group);
  const PeerId authority = manager_->slot_root(group, 0);
  if (authority == kInvalidPeer || !manager_->alive(authority)) {
    // No authority to lease from (degenerate alive set): these publishes
    // die like publishes addressed to a dead root.
    stats.batch_publishes_lost += count;
    return;
  }
  const std::uint64_t id = next_coord_id_++;
  ++stats.seq_lease_requests;
  if (tracer_.enabled())
    tracer_.emit({sim_->now(), obs::TraceEventType::kSeqLease, group, id, count,
                  count, root, authority});
  lease_pending_.emplace(id, PendingLease{group, slot, root, std::move(accepted)});
  coord_send(root, authority, id, SeqLease{group, slot, count, id}, kSeqLeaseKind);
}

void PubSubSystem::coord_send(PeerId from, PeerId to, std::uint64_t token,
                              std::any payload, sim::MessageKind kind) {
  sim_->network().note_control_envelope();
  coord_hop_->send(from, to, token, std::move(payload), kind);
}

void PubSubSystem::record_accept_times(GroupId group, std::uint64_t seq_lo,
                                       const std::vector<double>& accepted) {
  // Grants land out of order across slots, so accept times are assigned by
  // index into the dense seq space, not appended. Holes left by a lost
  // grant stay 0.0 — their seqs never flush, so no latency sample reads them.
  auto& times = accept_times_[group];
  if (times.size() < seq_lo + accepted.size())
    times.resize(seq_lo + accepted.size(), 0.0);
  for (std::size_t i = 0; i < accepted.size(); ++i) times[seq_lo + i] = accepted[i];
}

void PubSubSystem::on_seq_lease(PeerId self, PeerId from, const SeqLease& lease) {
  coord_hop_->acknowledge(self, from, lease.coord_id);
  if (!coord_seen_[self].insert(lease.coord_id).second) return;
  GroupStats& stats = manager_->stats(lease.group);
  ++stats.seq_leases_granted;
  std::uint64_t& next = next_seq_[lease.group];
  const std::uint64_t seq_lo = next;
  next += lease.count;
  const std::uint64_t id = next_coord_id_++;
  if (tracer_.enabled())
    tracer_.emit({sim_->now(), obs::TraceEventType::kSeqGrant, lease.group, id,
                  seq_lo, seq_lo + lease.count - 1, self, from});
  coord_send(self, from, id,
             SeqGrant{lease.group, lease.slot, seq_lo, lease.count, lease.coord_id,
                      id},
             kSeqGrantKind);
}

void PubSubSystem::on_seq_grant(PeerId self, PeerId from, const SeqGrant& grant) {
  coord_hop_->acknowledge(self, from, grant.coord_id);
  if (!coord_seen_[self].insert(grant.coord_id).second) return;
  const auto it = lease_pending_.find(grant.lease_id);
  if (it == lease_pending_.end()) return;  // re-keyed by an abandon, or stale
  PendingLease lease = std::move(it->second);
  lease_pending_.erase(it);
  record_accept_times(lease.group, grant.seq_lo, lease.accepted);
  launch_wave(lease.group, lease.slot, self, grant.seq_lo,
              grant.seq_lo + grant.count - 1);
}

void PubSubSystem::launch_wave(GroupId group, std::uint32_t origin_slot,
                               PeerId origin_root, std::uint64_t seq_lo,
                               std::uint64_t seq_hi) {
  GroupStats& stats = manager_->stats(group);
  const std::size_t replicas = manager_->root_replicas();
  for (std::uint32_t s = 0; s < replicas; ++s) {
    if (s == origin_slot) continue;
    const PeerId target = manager_->slot_root(group, s);
    if (target == kInvalidPeer || !manager_->alive(target)) continue;
    ++stats.shard_handoffs;
    const std::uint64_t id = next_coord_id_++;
    if (tracer_.enabled())
      tracer_.emit({sim_->now(), obs::TraceEventType::kShardWave, group, id,
                    seq_lo, seq_hi, origin_root, target});
    coord_send(origin_root, target, id, ShardWave{group, s, seq_lo, seq_hi, id},
               kShardWaveKind);
  }
  drive_shard_wave(group, origin_slot, origin_root, seq_lo, seq_hi);
}

void PubSubSystem::on_shard_wave(PeerId self, PeerId from, const ShardWave& sw) {
  coord_hop_->acknowledge(self, from, sw.coord_id);
  if (!coord_seen_[self].insert(sw.coord_id).second) return;
  const PeerId current = manager_->slot_root(sw.group, sw.slot);
  if (current != self) {
    // Raced a promotion: forward the handoff to the slot's current root so
    // the range still reaches the shard.
    if (current != kInvalidPeer && manager_->alive(current)) {
      const std::uint64_t id = next_coord_id_++;
      coord_send(self, current, id,
                 ShardWave{sw.group, sw.slot, sw.seq_lo, sw.seq_hi, id},
                 kShardWaveKind);
    }
    return;
  }
  drive_shard_wave(sw.group, sw.slot, self, sw.seq_lo, sw.seq_hi);
}

void PubSubSystem::drive_shard_wave(GroupId group, std::uint32_t slot, PeerId root,
                                    std::uint64_t lo, std::uint64_t hi) {
  // Per-slot heartbeat horizon: one past the highest seq THIS slot root has
  // driven. A global next_seq_ horizon would advertise seqs a slot has not
  // received its handoff for yet, tricking subscribers into doomed NACKs.
  std::uint64_t& horizon = shard_horizon_[{group, slot}];
  horizon = std::max(horizon, hi + 1);
  const auto snapshot = manager_->slot_tree_snapshot(group, slot);
  if (snapshot == nullptr) return;  // shard empty: nobody owed this range
  GroupStats& stats = manager_->stats(group);
  const std::uint64_t count = hi - lo + 1;
  stats.expected_deliveries += count * snapshot->reached_subscribers;
  ++stats.shard_waves;
  if (count > 1) {
    const std::uint64_t saved = (count - 1) * snapshot->tree.edge_count() *
                                (acked() ? 2 : 1);
    stats.envelopes_saved += saved;
    sim_->network().note_batched_wave(saved);
  }
  const std::uint64_t wave = next_wave_++;
  wave_groups_.push_back(group);
  if (tracer_.enabled())
    tracer_.emit({sim_->now(), obs::TraceEventType::kRootFlush, group, wave, lo,
                  hi, root});
  disseminate(root, kInvalidPeer,
              payload_pool_.make(GroupDelivery{group, lo, hi, wave, snapshot}));
  if (heartbeats_enabled()) schedule_heartbeat(group);
}

void PubSubSystem::on_coord_abandon(const std::any& payload) {
  if (const auto* lease = std::any_cast<SeqLease>(&payload)) {
    // The authority died before acking: re-dispatch to the CURRENT
    // authority (the promoted slot-0 root) under a fresh coord id.
    const auto it = lease_pending_.find(lease->coord_id);
    if (it == lease_pending_.end()) return;
    PendingLease pending = std::move(it->second);
    lease_pending_.erase(it);
    const GroupId group = pending.group;
    const std::uint32_t slot = pending.slot;
    const PeerId root = pending.root;
    const std::uint64_t count = pending.accepted.size();
    GroupStats& stats = manager_->stats(group);
    const PeerId authority = manager_->slot_root(group, 0);
    if (!manager_->alive(root) || authority == kInvalidPeer ||
        !manager_->alive(authority)) {
      stats.batch_publishes_lost += count;
      return;
    }
    const std::uint64_t id = next_coord_id_++;
    ++stats.seq_lease_requests;
    if (tracer_.enabled())
      tracer_.emit({sim_->now(), obs::TraceEventType::kSeqLease, group, id, count,
                    count, root, authority});
    lease_pending_.emplace(id, std::move(pending));
    coord_send(root, authority, id, SeqLease{group, slot, count, id},
               kSeqLeaseKind);
    return;
  }
  if (const auto* grant = std::any_cast<SeqGrant>(&payload)) {
    // The requesting slot root died holding a granted range: the range was
    // assigned and can never flush — the documented permanent seq hole.
    ++manager_->stats(grant->group).seq_grants_lost;
    lease_pending_.erase(grant->lease_id);
    return;
  }
  if (const auto* sw = std::any_cast<ShardWave>(&payload)) {
    // The addressed slot root died: hand the range to the slot's promoted
    // root (re-sent nominally from the current authority).
    const PeerId target = manager_->slot_root(sw->group, sw->slot);
    if (target == kInvalidPeer || !manager_->alive(target)) return;
    const PeerId sender = manager_->slot_root(sw->group, 0);
    if (sender == kInvalidPeer || !manager_->alive(sender)) return;
    const std::uint64_t id = next_coord_id_++;
    ++manager_->stats(sw->group).shard_handoffs;
    if (tracer_.enabled())
      tracer_.emit({sim_->now(), obs::TraceEventType::kShardWave, sw->group, id,
                    sw->seq_lo, sw->seq_hi, sender, target});
    coord_send(sender, target, id,
               ShardWave{sw->group, sw->slot, sw->seq_lo, sw->seq_hi, id},
               kShardWaveKind);
  }
}

void PubSubSystem::disseminate(PeerId self, PeerId from,
                               const DeliveryPtr& delivery_ptr) {
  if (sharded()) {
    disseminate_sharded(self, from, delivery_ptr);
    return;
  }
  const GroupDelivery& delivery = *delivery_ptr;
  GroupStats& stats = manager_->stats(delivery.group);
  if (acked() && from != kInvalidPeer) {
    // Ack before anything else — a dedup hit included. The duplicate's
    // arrival means our previous ack may have been the lost message; an
    // unacked sender would retransmit until its budget died on a hop that
    // already delivered. One ack covers the wave's whole range.
    ++stats.ack_messages;
    hop_->acknowledge(self, from, delivery.wave);
  }
  // Per-seq dedup over the range: a retransmitted wave is usually stale
  // end to end, but a repair can have filled part of the range first —
  // then only the fresh remainder is delivered.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>>* fresh;
  if (acked()) {
    fresh = &fresh_runs(self, delivery.group, delivery.seq, delivery.seq_hi);
    if (fresh->empty()) {
      // Every seq already processed: a pure duplicate, re-acked above but
      // never re-delivered or re-forwarded.
      ++stats.duplicate_deliveries;
      sim_->network().note_duplicate();
      if (tracer_.enabled())
        tracer_.emit({sim_->now(), obs::TraceEventType::kDuplicateSuppressed,
                      delivery.group, delivery.wave, delivery.seq, delivery.seq_hi,
                      self, from});
      return;
    }
  } else {
    // Under QoS 0 the dedup is moot: the snapshot is a tree (one parent
    // per peer) and every wave has a unique (group, seq range), so without
    // retransmissions a peer can never receive the same wave twice.
    auto& scratch = fresh_scratch_[sim::Simulator::scratch_lane()];
    scratch.clear();
    scratch.emplace_back(delivery.seq, delivery.seq_hi);
    fresh = &scratch;
  }
  // Forwarding reads the wave's own snapshot, never the live cache — a
  // mid-wave graft/prune/rebuild affects later publishes only.
  const GroupTree* gt = delivery.tree.get();
  if (gt == nullptr || !gt->tree.reached(self)) return;
  // QoS 2 repair responders: the root and every forwarder retain the wave
  // (bounded per-(peer, group) window) so downstream NACKs can be served
  // from the nearest ancestor instead of the publisher. One slot covers
  // the whole range.
  if (end_to_end() &&
      (gt->tree.root() == self || !gt->tree.children(self).empty())) {
    stats.retained_evictions += manager_->retain_payload(
        self, delivery.group, delivery.seq, delivery.seq_hi, delivery_ptr);
    if (warm() && from == kInvalidPeer) {
      // Root-side flush: mirror the retained range to the replica so a
      // promoted successor can serve post-migration NACKs for it.
      ReplicaSync sync;
      sync.what = ReplicaSync::What::kRetain;
      sync.wave = delivery;
      replica_send(self, delivery.group, std::move(sync), false);
    }
  }
  if (gt->is_subscriber[self]) {
    for (const auto& [lo, hi] : *fresh) {
      if (end_to_end())
        window_observe(self, delivery, lo, hi);  // in-order release path
      else
        deliver_range(self, delivery.group, lo, hi);
    }
  }
  for (PeerId child : gt->tree.children(self)) {
    ++stats.payload_messages;
    hop_->send(self, child, delivery.wave, delivery_ptr);
  }
}

void PubSubSystem::disseminate_sharded(PeerId self, PeerId from,
                                       const DeliveryPtr& delivery_ptr) {
  const GroupDelivery& delivery = *delivery_ptr;
  GroupStats& stats = manager_->stats(delivery.group);
  if (acked() && from != kInvalidPeer) {
    ++stats.ack_messages;
    hop_->acknowledge(self, from, delivery.wave);
  }
  // Forwarding dedup is by wave id, not (group, seq): with R shard trees a
  // peer can sit in several of them, and ranges assigned under one slot's
  // wave must not starve its relays just because another slot's wave
  // already delivered those seqs here. Seq-level dedup still guards the
  // subscriber-delivery step below.
  if (from != kInvalidPeer && !wave_seen_[self].insert(delivery.wave).second) {
    ++stats.duplicate_deliveries;
    sim_->network().note_duplicate();
    if (tracer_.enabled())
      tracer_.emit({sim_->now(), obs::TraceEventType::kDuplicateSuppressed,
                    delivery.group, delivery.wave, delivery.seq, delivery.seq_hi,
                    self, from});
    return;
  }
  const GroupTree* gt = delivery.tree.get();
  if (gt == nullptr || !gt->tree.reached(self)) return;
  if (end_to_end() &&
      (gt->tree.root() == self || !gt->tree.children(self).empty())) {
    stats.retained_evictions += manager_->retain_payload(
        self, delivery.group, delivery.seq, delivery.seq_hi, delivery_ptr);
    if (warm() && from == kInvalidPeer &&
        self == manager_->root_of(delivery.group)) {
      // Only the slot-0 authority has a warm replica; other slot roots
      // retain locally and fail cold (their shard re-fetches via NACKs).
      ReplicaSync sync;
      sync.what = ReplicaSync::What::kRetain;
      sync.wave = delivery;
      replica_send(self, delivery.group, std::move(sync), false);
    }
  }
  if (gt->is_subscriber[self]) {
    if (acked()) {
      const auto& fresh =
          fresh_runs(self, delivery.group, delivery.seq, delivery.seq_hi);
      for (const auto& [lo, hi] : fresh) {
        if (end_to_end())
          window_observe(self, delivery, lo, hi);
        else
          deliver_range(self, delivery.group, lo, hi);
      }
    } else {
      deliver_range(self, delivery.group, delivery.seq, delivery.seq_hi);
    }
  }
  for (PeerId child : gt->tree.children(self)) {
    ++stats.payload_messages;
    hop_->send(self, child, delivery.wave, delivery_ptr);
  }
}

const std::vector<std::pair<std::uint64_t, std::uint64_t>>& PubSubSystem::fresh_runs(
    PeerId self, GroupId group, std::uint64_t lo, std::uint64_t hi) {
  auto& fresh = fresh_scratch_[sim::Simulator::scratch_lane()];
  fresh.clear();
  if (!config_.sim_core) {
    // Oracle path: one set node per seq.
    auto& seen = seen_[self];
    for (std::uint64_t s = lo; s <= hi; ++s) {
      if (!seen.emplace(group, s).second) continue;
      if (!fresh.empty() && fresh.back().second + 1 == s)
        fresh.back().second = s;
      else
        fresh.emplace_back(s, s);
    }
    return fresh;
  }
  // Interval-set path: the map holds disjoint, non-adjacent inclusive
  // ranges (start -> end), so consecutive covered ranges are always
  // separated by a gap and the walk below never emits an empty run.
  auto& ranges = seen_ranges_[self][group];
  // Hot paths first. In-order traffic lands exactly one past the covered
  // suffix (the map's last range holds both the greatest start and the
  // greatest end), so the overwhelmingly common arrival is an O(1) extend
  // in place — no erase, no node churn.
  if (ranges.empty()) {
    ranges.emplace(lo, hi);
    fresh.emplace_back(lo, hi);
    return fresh;
  }
  const auto last = std::prev(ranges.end());
  if (lo == last->second + 1) {
    last->second = hi;
    fresh.emplace_back(lo, hi);
    return fresh;
  }
  if (lo > last->second + 1) {  // ahead of everything, with a gap before it
    ranges.emplace_hint(ranges.end(), lo, hi);
    fresh.emplace_back(lo, hi);
    return fresh;
  }
  // The fresh sub-ranges of [lo, hi] are its complement against the
  // covered ranges overlapping it.
  auto it = ranges.upper_bound(lo);
  std::uint64_t cursor = lo;
  if (it != ranges.begin()) {
    const auto prev = std::prev(it);
    if (prev->second >= lo) cursor = prev->second + 1;
  }
  while (cursor <= hi) {
    if (it == ranges.end() || it->first > hi) {
      fresh.emplace_back(cursor, hi);
      break;
    }
    if (it->first > cursor) fresh.emplace_back(cursor, it->first - 1);
    if (it->second >= hi) break;
    cursor = it->second + 1;
    ++it;
  }
  // Splice [lo, hi] in, merging every overlapping or adjacent range.
  std::uint64_t nlo = lo;
  std::uint64_t nhi = hi;
  auto mit = ranges.lower_bound(lo);
  if (mit != ranges.begin()) {
    const auto prev = std::prev(mit);
    if (prev->second + 1 >= lo) {
      nlo = prev->first;
      nhi = std::max(nhi, prev->second);
      mit = prev;
    }
  }
  while (mit != ranges.end() && mit->first <= nhi + 1) {
    nhi = std::max(nhi, mit->second);
    mit = ranges.erase(mit);
  }
  ranges.emplace_hint(mit, nlo, nhi);
  return fresh;
}

void PubSubSystem::deliver_range(PeerId self, GroupId group, std::uint64_t lo,
                                 std::uint64_t hi) {
  GroupStats& stats = manager_->stats(group);
  const double now = sim_->now();
  if (sim::Simulator::parallel_lane() >= 0) {
    // Worker context: the integer tally goes to this lane's delta, the
    // latency record and probe are order-sensitive floating-point work —
    // log them and let the barrier replay in canonical cross-lane order.
    for (std::uint64_t seq = lo; seq <= hi; ++seq) {
      ++stats.deliveries;
      sim_->log_ext((kExtDeliver << 48) | self, group, seq, now);
      if (tracer_.enabled())
        tracer_.emit({now, obs::TraceEventType::kDelivery, group, obs::kNoWave,
                      seq, seq, self});
    }
    return;
  }
  const auto it = accept_times_.find(group);
  const std::vector<double>* times =
      it == accept_times_.end() ? nullptr : &it->second;
  for (std::uint64_t seq = lo; seq <= hi; ++seq) {
    ++stats.deliveries;
    if (times != nullptr && seq < times->size())
      stats.delivery_latency.record(now - (*times)[seq]);
    if (tracer_.enabled())
      tracer_.emit({now, obs::TraceEventType::kDelivery, group, obs::kNoWave, seq,
                    seq, self});
    if (probe_) probe_(self, group, seq, now);
  }
}

void PubSubSystem::deliver_local(PeerId self, GroupId group, std::uint64_t seq) {
  GroupStats& stats = manager_->stats(group);
  ++stats.deliveries;
  emit_delivery(self, group, seq);
  if (tracer_.enabled())
    tracer_.emit({sim_->now(), obs::TraceEventType::kDelivery, group, obs::kNoWave,
                  seq, seq, self});
}

void PubSubSystem::emit_delivery(PeerId self, GroupId group, std::uint64_t seq) {
  if (sim::Simulator::parallel_lane() >= 0) {
    sim_->log_ext((kExtDeliver << 48) | self, group, seq, sim_->now());
    return;
  }
  apply_delivery(self, group, seq, sim_->now());
}

void PubSubSystem::apply_delivery(PeerId self, GroupId group, std::uint64_t seq,
                                  double time) {
  // Publish -> delivery latency, recorded unconditionally (seq indexes the
  // accept-time vector because seqs are assigned densely at the root).
  // Runs on the coordinator only — directly on the classic loop, or as the
  // canonical-order barrier replay of a worker's log_ext record; either way
  // the operands and accumulation order are bit-identical.
  const auto it = accept_times_.find(group);
  if (it != accept_times_.end() && seq < it->second.size())
    manager_->stats(group).delivery_latency.record(time - it->second[seq]);
  if (probe_) probe_(self, group, seq, time);
}

PubSubSystem::WindowState* PubSubSystem::find_window(PeerId self, GroupId group) {
  auto& windows = windows_[self];
  const auto it = windows.find(group);
  return it == windows.end() ? nullptr : &it->second;
}

PubSubSystem::WindowState& PubSubSystem::ensure_window(PeerId self, GroupId group) {
  return windows_[self]
      .try_emplace(group, WindowState{SubscriberWindow{config_.repair.reorder_limit},
                                      {}, nullptr, 0, false})
      .first->second;
}

void PubSubSystem::window_observe(PeerId self, const GroupDelivery& delivery,
                                  std::uint64_t lo, std::uint64_t hi) {
  WindowState& ws = ensure_window(self, delivery.group);
  // Newest wave's snapshot wins: a repair resends an OLD wave, and its
  // pre-failure tree must not regress the ancestor chain other gaps use.
  if (ws.latest_tree == nullptr || delivery.wave >= ws.latest_wave) {
    ws.latest_tree = delivery.tree;
    ws.latest_wave = delivery.wave;
  }
  GroupStats& stats = manager_->stats(delivery.group);
  // Gaps inside the range healed — by a kRepairKind, or by per-hop
  // recovery winning the race before any NACK went out.
  for (std::uint64_t s = lo; s <= hi; ++s)
    finish_gap(self, delivery.group, ws, s, /*repaired=*/true);
  const auto arrival = ws.window.observe_range(lo, hi);
  for (const std::uint64_t m : arrival.pre_window) {
    ++stats.pre_window_deliveries;
    deliver_local(self, delivery.group, m);
  }
  for (const std::uint64_t m : arrival.new_gaps) {
    ws.gaps.emplace(m, GapState{sim_->now(), 0, 0});
    ++stats.gap_seqs_detected;
    if (tracer_.enabled())
      tracer_.emit({sim_->now(), obs::TraceEventType::kGapDetected, delivery.group,
                    obs::kNoWave, m, m, self});
  }
  for (const std::uint64_t m : arrival.forced_abandoned) {
    ws.gaps.erase(m);
    ++stats.gap_seqs_abandoned;
    if (tracer_.enabled())
      tracer_.emit({sim_->now(), obs::TraceEventType::kGapAbandoned, delivery.group,
                    obs::kNoWave, m, m, self});
  }
  for (const std::uint64_t m : arrival.released) deliver_local(self, delivery.group, m);
  if (!ws.gaps.empty()) arm_gap_timer(self, delivery.group, ws);
}

void PubSubSystem::arm_gap_timer(PeerId self, GroupId group, WindowState& ws) {
  if (ws.timer_armed) return;
  ws.timer_armed = true;
  // Control-lane timer: on_gap_timer reads cross-lane state (the hop
  // layer's aggregate pending_to, the live window map), so it must run at
  // an instant with the workers parked. setup_shards guarantees
  // gap_timeout >= lookahead, which keeps a worker-armed control event
  // past the current window's bound. On the classic loop this is a plain
  // schedule_after.
  sim_->schedule_control_after(config_.repair.gap_timeout,
                               [this, self, group]() { on_gap_timer(self, group); });
}

std::vector<PeerId> PubSubSystem::ancestor_chain(PeerId self, GroupId group,
                                                 const WindowState& ws) const {
  std::vector<PeerId> chain;
  const GroupTree* gt = ws.latest_tree.get();
  if (gt == nullptr || !gt->tree.reached(self)) return chain;
  for (PeerId p = self; p != gt->tree.root();) {
    p = gt->tree.parent(p);
    if (p == kInvalidPeer) break;  // defensive: snapshot trees are rooted
    if (manager_->alive(p)) chain.push_back(p);
  }
  if (warm() && !manager_->alive(gt->tree.root())) {
    // The snapshot's root died mid-repair, so the walk above dead-ends
    // below it. The promoted successor holds the replicated history —
    // append it as the final escalation target. In sharded mode that is
    // the subscriber's own slot root: every committed range is driven
    // through every shard tree, so the promoted slot root retains it.
    const PeerId current = sharded() ? manager_->owner_root(group, self)
                                     : manager_->root_of(group);
    if (manager_->alive(current) && current != self &&
        std::find(chain.begin(), chain.end(), current) == chain.end())
      chain.push_back(current);
  }
  return chain;
}

void PubSubSystem::finish_gap(PeerId self, GroupId group, WindowState& ws,
                              std::uint64_t seq, bool repaired) {
  GroupStats& stats = manager_->stats(group);
  const auto it = ws.gaps.find(seq);
  if (it == ws.gaps.end()) return;
  if (repaired) {
    const double latency = sim_->now() - it->second.detected_at;
    if (sim::Simulator::parallel_lane() >= 0) {
      // Same story as delivery latency: the subtraction's operands are
      // deterministic, but += and histogram-record order across lanes is
      // not — defer both to the barrier's canonical replay.
      sim_->log_ext((kExtGapRepair << 48) | self, group, seq, latency);
    } else {
      stats.gap_latency_total += latency;
      stats.gap_repair_latency.record(latency);
    }
    ++stats.gap_seqs_repaired;
    if (tracer_.enabled())
      tracer_.emit({sim_->now(), obs::TraceEventType::kGapRepaired, group,
                    obs::kNoWave, seq, seq, self});
  } else {
    ++stats.gap_seqs_abandoned;
    if (tracer_.enabled())
      tracer_.emit({sim_->now(), obs::TraceEventType::kGapAbandoned, group,
                    obs::kNoWave, seq, seq, self});
  }
  ws.gaps.erase(it);
  if (!repaired)
    for (const std::uint64_t m : ws.window.abandon(seq)) deliver_local(self, group, m);
}

void PubSubSystem::send_nacks(PeerId self, GroupId group, WindowState& ws,
                              const std::vector<std::uint64_t>& seqs, bool escalate) {
  GroupStats& stats = manager_->stats(group);
  const auto chain = ancestor_chain(self, group, ws);
  // Batch by target: gaps at different escalation levels NACK different
  // ancestors, but each ancestor gets at most one envelope per round.
  std::map<PeerId, std::vector<std::uint64_t>> by_target;
  for (const std::uint64_t seq : seqs) {
    const auto it = ws.gaps.find(seq);
    if (it == ws.gaps.end()) continue;  // already healed or given up
    GapState& gap = it->second;
    // Budget: one attempt per ancestor plus bounded slack for lost
    // NACK/repair envelopes (a root miss short-circuits this in
    // on_repair_miss).
    if (chain.empty() ||
        gap.attempts >= chain.size() + config_.repair.max_nack_attempts) {
      finish_gap(self, group, ws, seq, /*repaired=*/false);
      continue;
    }
    if (escalate && gap.attempts > 0) {
      // The previous ancestor had its shot (timeout or explicit miss):
      // move one level up. Past the root the target saturates there.
      ++gap.ancestor;
      if (gap.ancestor < chain.size()) ++stats.repair_escalations;
    }
    const PeerId target = chain[std::min(gap.ancestor, chain.size() - 1)];
    ++gap.attempts;
    by_target[target].push_back(seq);
  }
  for (auto& [target, missing] : by_target) {
    ++stats.nacks_sent;
    stats.nacked_seqs += missing.size();
    sim_->network().note_nack();
    if (tracer_.enabled()) {
      const auto [lo, hi] = std::minmax_element(missing.begin(), missing.end());
      tracer_.emit({sim_->now(), obs::TraceEventType::kNackSent, group,
                    obs::kNoWave, *lo, *hi, self, target});
    }
    sim_->send(self, target, kNackKind, GapNack{group, self, std::move(missing)});
  }
  if (!ws.gaps.empty()) arm_gap_timer(self, group, ws);
}

void PubSubSystem::on_gap_timer(PeerId self, GroupId group) {
  WindowState* wsp = find_window(self, group);
  if (wsp == nullptr) return;
  WindowState& ws = *wsp;
  ws.timer_armed = false;
  if (ws.gaps.empty()) return;
  if (!manager_->alive(self)) return;  // died while the timer was pending
  // Piggyback on QoS 1: while some sender is still retransmitting toward
  // us, the gap may heal per-hop — defer the whole round instead of
  // repairing the same wave twice.
  if (hop_->pending_to(self) > 0) {
    ++manager_->stats(group).nack_deferrals;
    arm_gap_timer(self, group, ws);
    return;
  }
  std::vector<std::uint64_t> outstanding;
  outstanding.reserve(ws.gaps.size());
  for (const auto& [seq, gap] : ws.gaps) outstanding.push_back(seq);
  send_nacks(self, group, ws, outstanding, /*escalate=*/true);
}

void PubSubSystem::on_nack(PeerId self, const GapNack& nack) {
  GroupStats& stats = manager_->stats(nack.group);
  std::vector<std::uint64_t> missing;
  // Range repair service: several NACKed seqs can live in one retained
  // range wave — resend each retained envelope at most once per NACK.
  std::set<std::uint64_t> served_ranges;  // keyed by the range's seq_lo
  for (const std::uint64_t seq : nack.seqs) {
    if (const std::any* payload = manager_->retained_payload(self, nack.group, seq)) {
      const auto& wave_ptr = std::any_cast<const DeliveryPtr&>(*payload);
      const GroupDelivery& wave = *wave_ptr;
      if (!served_ranges.insert(wave.seq).second) continue;
      ++stats.repairs_served;
      sim_->network().note_repair_served();
      if (tracer_.enabled())
        tracer_.emit({sim_->now(), obs::TraceEventType::kRepairServed, nack.group,
                      wave.wave, wave.seq, wave.seq_hi, self, nack.origin});
      sim_->send(self, nack.origin, kRepairKind, wave_ptr);
    } else {
      missing.push_back(seq);
    }
  }
  if (!missing.empty()) {
    ++stats.repair_misses;
    if (tracer_.enabled()) {
      const auto [lo, hi] = std::minmax_element(missing.begin(), missing.end());
      tracer_.emit({sim_->now(), obs::TraceEventType::kRepairMiss, nack.group,
                    obs::kNoWave, *lo, *hi, self, nack.origin});
    }
    sim_->send(self, nack.origin, kRepairMissKind,
               GapRepairMiss{nack.group, std::move(missing)});
  }
}

void PubSubSystem::on_repair(PeerId self, const DeliveryPtr& delivery_ptr) {
  const GroupDelivery& delivery = *delivery_ptr;
  GroupStats& stats = manager_->stats(delivery.group);
  // Escalation can recruit two responders for one seq (a slow repair plus
  // a retried ancestor): the shared dedup suppresses the second copy. A
  // range repair can also overlap seqs that arrived since the NACK went
  // out — only the fresh remainder runs through the window.
  const auto& fresh = fresh_runs(self, delivery.group, delivery.seq, delivery.seq_hi);
  if (fresh.empty()) {
    ++stats.duplicate_deliveries;
    sim_->network().note_duplicate();
    return;
  }
  for (const auto& [lo, hi] : fresh) window_observe(self, delivery, lo, hi);
  // Retain by the CURRENT tree, not the repaired wave's old snapshot: a
  // peer that forwards for the rebuilt tree can serve its own subtree's
  // NACKs for this wave even if the failed tree had it as a leaf.
  const WindowState& ws = *find_window(self, delivery.group);  // window_observe created it
  const GroupTree* latest = ws.latest_tree.get();
  if (latest != nullptr && latest->tree.reached(self) &&
      !latest->tree.children(self).empty())
    stats.retained_evictions += manager_->retain_payload(
        self, delivery.group, delivery.seq, delivery.seq_hi, delivery_ptr);
}

void PubSubSystem::on_repair_miss(PeerId self, PeerId from, const GapRepairMiss& miss) {
  WindowState* wsp = find_window(self, miss.group);
  if (wsp == nullptr) return;
  WindowState& ws = *wsp;
  // Locate the responder in the current chain: several NACK rounds can be
  // in flight at once (the miss walk and the timer walk interleave), so a
  // miss only means "escalate" when it comes from the gap's frontier —
  // stale misses from levels already passed must not push the target past
  // ancestors that were never asked.
  const auto chain = ancestor_chain(self, miss.group, ws);
  std::size_t from_level = chain.size();
  for (std::size_t i = 0; i < chain.size(); ++i)
    if (chain[i] == from) {
      from_level = i;
      break;
    }
  if (from_level == chain.size()) return;  // responder left the chain: timer retries
  std::vector<std::uint64_t> still_missing;
  for (const std::uint64_t seq : miss.seqs) {
    const auto git = ws.gaps.find(seq);
    if (git == ws.gaps.end()) continue;  // healed meanwhile
    if (from_level < git->second.ancestor) continue;  // stale lower-level miss
    if (from_level + 1 >= chain.size()) {
      // The chain's end — the root — says the seq is gone (evicted past
      // the retention window): nobody farther out can serve it. Abandon
      // and let the window skip on.
      finish_gap(self, miss.group, ws, seq, /*repaired=*/false);
      continue;
    }
    git->second.ancestor = from_level + 1;
    ++manager_->stats(miss.group).repair_escalations;
    still_missing.push_back(seq);
  }
  send_nacks(self, miss.group, ws, still_missing, /*escalate=*/false);
}

void PubSubSystem::replica_send(PeerId root, GroupId group, ReplicaSync sync,
                                bool migration) {
  const PeerId replica = manager_->ensure_replica(group);
  if (replica == kInvalidPeer || !manager_->alive(root)) return;
  sync.group = group;
  sync.sync_id = next_sync_id_++;
  GroupStats& stats = manager_->stats(group);
  ++stats.replica_sync_envelopes;
  sim_->network().note_replica_sync();
  if (migration) {
    ++stats.migration_envelopes;
    sim_->network().note_migration_envelope();
  }
  if (tracer_.enabled())
    tracer_.emit({sim_->now(), obs::TraceEventType::kReplicaSync, group,
                  sync.sync_id, static_cast<std::uint64_t>(sync.what),
                  static_cast<std::uint64_t>(sync.what), root, replica});
  replica_hop_->send(root, replica, sync.sync_id, std::move(sync));
}

void PubSubSystem::replica_sync_membership(PeerId root, GroupId group, PeerId member,
                                           bool subscribed) {
  ReplicaSync sync;
  sync.what = subscribed ? ReplicaSync::What::kMember : ReplicaSync::What::kUnmember;
  sync.member = member;
  replica_send(root, group, std::move(sync), false);
}

void PubSubSystem::on_replica_sync(PeerId self, PeerId from, const ReplicaSync& sync) {
  // Ack first, dedup second, exactly like the graft plane: the duplicate's
  // arrival means our previous ack may have been the lost envelope, but a
  // non-idempotent delta (kPendingJoin) must apply exactly once.
  replica_hop_->acknowledge(self, from, sync.sync_id);
  if (!sync_seen_[self].insert(sync.sync_id).second) return;
  // Stale stream: the delta was addressed to this peer as the group's
  // replica. If it no longer is (promoted, or replaced while the envelope
  // flew), applying it would corrupt state now owed to someone else.
  if (manager_->replica_of(sync.group) != self) return;
  switch (sync.what) {
    case ReplicaSync::What::kMember:
      manager_->replica_apply_membership(sync.group, sync.member, true);
      return;
    case ReplicaSync::What::kUnmember:
      manager_->replica_apply_membership(sync.group, sync.member, false);
      return;
    case ReplicaSync::What::kRetain:
      // Mirrored into the replica's OWN RetainedBuffer (per-peer state that
      // survives promotion) — this line is what turns post-migration NACKs
      // from guaranteed misses into served repairs.
      // The mirrored wave is re-wrapped through the pool so every retained
      // slot in the system holds the same DeliveryPtr shape.
      manager_->stats(sync.group).retained_evictions += manager_->retain_payload(
          self, sync.group, sync.wave.seq, sync.wave.seq_hi,
          payload_pool_.make(sync.wave));
      return;
    case ReplicaSync::What::kPendingJoin: {
      ReplicaPending& pending = replica_pending_[sync.group];
      ++pending.count;
      pending.accepted.push_back(sync.accepted_at);
      return;
    }
    case ReplicaSync::What::kPendingFlush:
      replica_pending_.erase(sync.group);
      return;
  }
}

void PubSubSystem::bootstrap_replica(GroupId group, bool migration) {
  const PeerId root = manager_->root_of(group);
  if (!manager_->alive(root)) return;
  if (manager_->ensure_replica(group) == kInvalidPeer) return;
  // One envelope per member, retained range, and pending join: the handoff
  // costs real messages on real links, not a pointer swap.
  for (const PeerId member : manager_->subscribers_of(group)) {
    ReplicaSync sync;
    sync.what = ReplicaSync::What::kMember;
    sync.member = member;
    replica_send(root, group, std::move(sync), migration);
  }
  for (const auto& [lo, hi] : manager_->retained_ranges(root, group)) {
    (void)hi;  // the retained wave carries its own [seq, seq_hi]
    const std::any* payload = manager_->retained_payload(root, group, lo);
    if (payload == nullptr) continue;
    ReplicaSync sync;
    sync.what = ReplicaSync::What::kRetain;
    sync.wave = *std::any_cast<const DeliveryPtr&>(*payload);
    replica_send(root, group, std::move(sync), migration);
  }
  if (acked() && batching()) {
    // Sharded groups buffer the authority's publishes under {group, slot 0};
    // only that buffer is warm-replicated, so only it re-joins here.
    PendingBatch* bp = nullptr;
    if (sharded()) {
      const auto it = shard_pending_.find({group, 0u});
      if (it != shard_pending_.end()) bp = &it->second;
    } else {
      const auto it = pending_batch_.find(group);
      if (it != pending_batch_.end()) bp = &it->second;
    }
    if (bp != nullptr && bp->count > 0 && bp->root == root) {
      for (const double accepted_at : bp->accepted) {
        ReplicaSync sync;
        sync.what = ReplicaSync::What::kPendingJoin;
        sync.accepted_at = accepted_at;
        replica_send(root, group, std::move(sync), migration);
      }
    }
  }
}

void PubSubSystem::handle_promotion(const GroupManager::RootPromotion& promotion) {
  GroupStats& stats = manager_->stats(promotion.group);
  if (tracer_.enabled())
    tracer_.emit({sim_->now(), obs::TraceEventType::kPromotion, promotion.group,
                  obs::kNoWave, promotion.warm ? 1u : 0u,
                  promotion.membership_consistent ? 1u : 0u, promotion.new_root,
                  promotion.old_root});
  if (acked() && batching()) {
    // Adopt (or retire) the dead root's pending batch. The façade's buffer
    // count is ground truth for how many publishes were pending; the
    // replica's copy bounds how many the successor may claim — min() keeps
    // a racing flush/join from inventing phantom publishes. Sharded groups
    // keep the authority's buffer under {group, slot 0}.
    PendingBatch* bp = nullptr;
    if (sharded()) {
      const auto bit = shard_pending_.find({promotion.group, 0u});
      if (bit != shard_pending_.end()) bp = &bit->second;
    } else {
      const auto bit = pending_batch_.find(promotion.group);
      if (bit != pending_batch_.end()) bp = &bit->second;
    }
    const std::size_t at_root =
        (bp != nullptr && bp->root == promotion.old_root) ? bp->count : 0;
    if (at_root > 0) {
      sim_->cancel(bp->timer);
      std::size_t inherited = 0;
      if (promotion.warm) {
        const auto rp = replica_pending_.find(promotion.group);
        if (rp != replica_pending_.end())
          inherited = std::min(rp->second.count, at_root);
      }
      if (at_root > inherited) stats.batch_publishes_lost += at_root - inherited;
      bp->count = inherited;
      bp->accepted.resize(inherited);
      if (inherited > 0) {
        const auto& copy = replica_pending_.at(promotion.group).accepted;
        std::copy_n(copy.begin(), inherited, bp->accepted.begin());
        bp->root = promotion.new_root;
        stats.pending_publishes_inherited += inherited;
        // A fresh window from the adoption instant: the inherited batch
        // flushes from the successor like any other.
        bp->timer = sim_->schedule_after(
            config_.batch_window, [this, group = promotion.group]() {
              if (sharded())
                flush_shard_batch(group, 0, true);
              else
                flush_batch(group, true);
            });
      }
    }
  }
  replica_pending_.erase(promotion.group);
  // The successor owes its own replica a full bootstrap — the measured
  // migration cost — and, under heartbeats, a beacon round so subscribers
  // severed by the same failure learn the horizon from the NEW root.
  bootstrap_replica(promotion.group, /*migration=*/true);
  if (heartbeats_enabled()) {
    const auto seq_it = next_seq_.find(promotion.group);
    if (seq_it != next_seq_.end() && seq_it->second > 0)
      schedule_heartbeat(promotion.group);
  }
}

void PubSubSystem::schedule_heartbeat(GroupId group) {
  HeartbeatState& hb = heartbeat_[group];
  hb.rounds_left = config_.heartbeat_rounds;
  // A new epoch orphans any pending tick of the previous burst — timers
  // never need cancelling, stale ones just fall through.
  const std::uint64_t epoch = ++hb.epoch;
  sim_->schedule_after(config_.heartbeat_interval,
                       [this, group, epoch]() { heartbeat_tick(group, epoch); });
}

void PubSubSystem::heartbeat_tick(GroupId group, std::uint64_t epoch) {
  const auto it = heartbeat_.find(group);
  if (it == heartbeat_.end() || it->second.epoch != epoch ||
      it->second.rounds_left == 0)
    return;  // superseded by a newer flush's burst, or the burst is done
  --it->second.rounds_left;
  send_heartbeat(group);
  if (it->second.rounds_left > 0)
    sim_->schedule_after(config_.heartbeat_interval,
                         [this, group, epoch]() { heartbeat_tick(group, epoch); });
}

void PubSubSystem::send_heartbeat(GroupId group) {
  if (sharded()) {
    // One beacon per slot, advertising the slot's OWN horizon: a global
    // next_seq_ horizon would name seqs whose handoff a lagging slot has
    // not driven yet, sending its subscribers into doomed NACK rounds.
    for (std::uint32_t s = 0; s < manager_->root_replicas(); ++s) {
      const auto hit = shard_horizon_.find({group, s});
      if (hit == shard_horizon_.end() || hit->second == 0) continue;
      const PeerId root = manager_->slot_root(group, s);
      if (root == kInvalidPeer || !manager_->alive(root)) continue;
      const auto snapshot = manager_->slot_tree_snapshot(group, s);
      if (snapshot == nullptr) continue;
      const std::uint64_t wave = next_wave_++;
      wave_groups_.push_back(group);
      const GroupHeartbeat hb{group, hit->second - 1, wave, snapshot};
      ++manager_->stats(group).heartbeats_sent;
      if (tracer_.enabled())
        tracer_.emit({sim_->now(), obs::TraceEventType::kHeartbeat, group, wave,
                      hb.highest_seq, hb.highest_seq, root});
      on_heartbeat(root, hb);
    }
    return;
  }
  const auto seq_it = next_seq_.find(group);
  if (seq_it == next_seq_.end() || seq_it->second == 0) return;  // nothing flushed
  const PeerId root = manager_->root_of(group);
  if (!manager_->alive(root)) return;  // the promotion re-arms its own burst
  const auto snapshot = manager_->tree_snapshot(group);
  if (snapshot == nullptr) return;  // nobody subscribed
  // Beacons live in the same dense wave-id space as data waves, so the
  // per-peer dedup and latest-tree ordering work unchanged.
  const std::uint64_t wave = next_wave_++;
  wave_groups_.push_back(group);
  const GroupHeartbeat hb{group, seq_it->second - 1, wave, snapshot};
  ++manager_->stats(group).heartbeats_sent;
  if (tracer_.enabled())
    tracer_.emit({sim_->now(), obs::TraceEventType::kHeartbeat, group, wave,
                  hb.highest_seq, hb.highest_seq, root});
  on_heartbeat(root, hb);  // the root's own copy; forwarding starts here
}

void PubSubSystem::on_heartbeat(PeerId self, const GroupHeartbeat& hb) {
  if (!hb_seen_[self].insert(hb.wave).second) return;
  const GroupTree* gt = hb.tree.get();
  if (gt == nullptr || !gt->tree.reached(self)) return;
  if (gt->is_subscriber[self]) {
    WindowState* wsp = find_window(self, hb.group);
    // No window state means this subscriber never consumed a wave — the
    // beacon owes a late joiner nothing (mark_through's no-op rule), but
    // it ALSO covers the residual blind spot: a subscriber severed on the
    // group's only wave has no window and stays silent forever. Count
    // those beacons so the blind spot is visible in GroupStats instead of
    // indistinguishable from healthy late joiners.
    if (wsp == nullptr) {
      ++manager_->stats(hb.group).heartbeat_blind_windows;
    } else {
      WindowState& ws = *wsp;
      // The beacon is the newest traffic: its snapshot feeds the ancestor
      // chain exactly as a data wave's would.
      if (ws.latest_tree == nullptr || hb.wave >= ws.latest_wave) {
        ws.latest_tree = hb.tree;
        ws.latest_wave = hb.wave;
      }
      GroupStats& stats = manager_->stats(hb.group);
      for (const std::uint64_t m : ws.window.mark_through(hb.highest_seq)) {
        ws.gaps.emplace(m, GapState{sim_->now(), 0, 0});
        ++stats.gap_seqs_detected;
        ++stats.heartbeat_gap_detections;
        if (tracer_.enabled())
          tracer_.emit({sim_->now(), obs::TraceEventType::kGapDetected, hb.group,
                        obs::kNoWave, m, m, self});
      }
      if (!ws.gaps.empty()) arm_gap_timer(self, hb.group, ws);
    }
  }
  for (const PeerId child : gt->tree.children(self)) {
    sim_->network().note_heartbeat();
    sim_->send(self, child, kHeartbeatKind, hb);
  }
}

void PubSubSystem::schedule_control(double time, PeerId peer, GroupId group,
                                    sim::MessageKind kind) {
  sim_->schedule_at(time, [this, peer, group, kind]() {
    if (!manager_->alive(peer)) return;
    // Sharded groups address control at the origin's OWN slot root — this
    // is the load split: each anchor's neighbourhood hits its own replica.
    const GroupRequest request{group, peer,
                               sharded() ? manager_->owner_root(group, peer)
                                         : manager_->root_of(group)};
    if (peer == request.target)
      handle_at_root(peer, kind, request);
    else
      forward_control(peer, kind, request);
  });
}

void PubSubSystem::publisher_join(PeerId peer, GroupId group) {
  PublisherBatch& batch = publisher_pending_[{peer, group}];
  ++batch.count;
  ++manager_->stats(group).publisher_batched_publishes;
  if (batch.count == 1) {
    batch.timer =
        sim_->schedule_after(config_.publisher_batch_window,
                             [this, peer, group]() { publisher_flush(peer, group); });
  }
  if (batch.count >= config_.publisher_max_batch) {
    sim_->cancel(batch.timer);
    publisher_flush(peer, group);
  }
}

void PubSubSystem::publisher_flush(PeerId peer, GroupId group) {
  const auto it = publisher_pending_.find({peer, group});
  if (it == publisher_pending_.end() || it->second.count == 0) return;
  const std::uint32_t n = it->second.count;
  it->second.count = 0;
  if (!manager_->alive(peer)) return;  // died holding the buffer: publishes die too
  GroupStats& stats = manager_->stats(group);
  ++stats.publisher_batches;
  // One control envelope now carries n publishes; the other n-1 were never
  // sent (the whole point of source-side coalescing on a hot group).
  stats.publisher_envelopes_saved += n - 1;
  const GroupRequest request{group, peer,
                             sharded() ? manager_->owner_root(group, peer)
                                       : manager_->root_of(group),
                             n};
  if (peer == request.target)
    handle_at_root(peer, kPublishKind, request);
  else
    forward_control(peer, kPublishKind, request);
}

void PubSubSystem::subscribe_at(double time, PeerId peer, GroupId group) {
  schedule_control(time, peer, group, kSubscribeKind);
}

void PubSubSystem::unsubscribe_at(double time, PeerId peer, GroupId group) {
  schedule_control(time, peer, group, kUnsubscribeKind);
}

void PubSubSystem::publish_at(double time, PeerId peer, GroupId group) {
  if (publisher_batching()) {
    sim_->schedule_at(time, [this, peer, group]() {
      if (!manager_->alive(peer)) return;
      publisher_join(peer, group);
    });
    return;
  }
  schedule_control(time, peer, group, kPublishKind);
}

void PubSubSystem::depart_now(PeerId peer) {
  // The alive-set is about to change: every memoized greedy step that
  // routed through (or around) this peer is suspect. Flush wholesale.
  route_cache_.clear();
  const auto outcome = manager_->handle_departure(peer);
  // The departure sweep aborts every in-flight graft it invalidated; the
  // surviving subscribers re-enter through resubscribe so churn mid-graft
  // converges (the churn battery pins this).
  for (const auto& aborted : outcome.aborted_grafts) {
    sim_->network().note_graft_abort();
    resubscribe(aborted.group, aborted.subscriber);
  }
  if (!warm()) return;
  // Promotions first: a promoted root re-establishes its own replication
  // before any same-instant membership delta relies on it. Non-authority
  // slot promotions carry no replica state — GroupManager already handed
  // the shard (members + cursors) to the successor; their pending buffers
  // fail cold by design.
  for (const auto& promotion : outcome.promotions) {
    if (promotion.slot != 0) continue;
    handle_promotion(promotion);
  }
  for (const auto& loss : outcome.replica_losses) {
    // The dead replica's pending-batch copy dies with it. replica_pending_
    // is keyed by group (one replica per group), so without this erase the
    // stale count survives the loss and the re-bootstrap below STACKS its
    // fresh kPendingJoin stream on top — a later promotion would then
    // inherit phantom publishes the real buffer never held.
    replica_pending_.erase(loss.group);
    if (manager_->alive(manager_->root_of(loss.group)))
      bootstrap_replica(loss.group, /*migration=*/true);
  }
  for (const GroupId group : outcome.member_losses) {
    const PeerId root = manager_->root_of(group);
    if (manager_->alive(root)) replica_sync_membership(root, group, peer, false);
  }
}

void PubSubSystem::depart_at(double time, PeerId peer) {
  sim_->schedule_at(time, [this, peer]() { depart_now(peer); });
}

std::size_t PubSubSystem::run(std::size_t max_events) {
  return sim_->run_until_idle(max_events);
}

}  // namespace geomcast::groups
