#include "groups/pubsub.hpp"

#include <any>
#include <stdexcept>

#include "overlay/routing.hpp"

namespace geomcast::groups {

/// One simulated peer: dispatches the pub/sub kinds to the system's
/// handlers. All protocol state lives in the system/manager (the per-root
/// state each envelope addresses), keeping the node a thin actor shell
/// like multicast/protocol.cpp's MulticastNode.
class PubSubSystem::PubSubNode final : public sim::Node {
 public:
  PubSubNode(PeerId id, PubSubSystem& system) : sim::Node(id), system_(system) {}

  void on_message(sim::Simulator& sim, const sim::Envelope& envelope) override {
    (void)sim;
    // The send-time drop rule cannot catch a departure that happens while
    // the envelope is in flight; a dead peer must not act on anything.
    if (!system_.manager_->alive(id())) return;
    switch (envelope.kind) {
      case kSubscribeKind:
      case kUnsubscribeKind:
      case kPublishKind: {
        const auto& request = std::any_cast<const GroupRequest&>(envelope.payload);
        if (id() == request.target)
          system_.handle_at_root(id(), envelope.kind, request);
        else
          system_.forward_control(id(), envelope.kind, request);
        return;
      }
      case kDeliverKind: {
        system_.disseminate(id(), envelope.from,
                            std::any_cast<const GroupDelivery&>(envelope.payload));
        return;
      }
      case kDeliverAckKind: {
        system_.hop_->on_ack(envelope);
        return;
      }
      default:
        throw std::logic_error("PubSubNode: unexpected message kind");
    }
  }

 private:
  PubSubSystem& system_;
};

PubSubSystem::PubSubSystem(const overlay::OverlayGraph& graph, PubSubConfig config)
    : graph_(graph),
      config_(std::move(config)),
      sim_(std::make_unique<sim::Simulator>(config_.seed)),
      manager_(std::make_unique<GroupManager>(graph, config_.groups)) {
  sim_->network().set_latency(config_.latency);
  // Departed peers silently drop everything addressed to them, on top of
  // whatever stochastic loss the caller injected.
  sim::LossModel loss;
  loss.drop_probability = config_.loss.drop_probability;
  loss.drop_if = [this](const sim::Envelope& envelope) {
    if (!manager_->alive(envelope.to)) return true;
    return config_.loss.drop_if && config_.loss.drop_if(envelope);
  };
  sim_->network().set_loss(std::move(loss));

  // Payload hops run through the shared reliability layer (a passthrough
  // under QoS 0). Retransmissions/abandonments are attributed to the wave's
  // group through the hooks; a forwarder that departs with hops pending
  // stops retransmitting (its subtree's loss is churn, not budget, so it is
  // not charged as abandoned).
  multicast::ReliableHopLayer::Hooks hooks;
  hooks.on_retransmit = [this](sim::NodeId, sim::NodeId, std::uint64_t,
                               const std::any& payload) {
    const auto& delivery = std::any_cast<const GroupDelivery&>(payload);
    ++manager_->stats(delivery.group).retransmissions;
  };
  hooks.on_abandon = [this](sim::NodeId, sim::NodeId, std::uint64_t,
                            const std::any& payload) {
    const auto& delivery = std::any_cast<const GroupDelivery&>(payload);
    ++manager_->stats(delivery.group).abandoned_hops;
  };
  hooks.sender_alive = [this](sim::NodeId p) { return manager_->alive(p); };
  hop_ = std::make_unique<multicast::ReliableHopLayer>(
      *sim_, kDeliverKind, kDeliverAckKind, config_.reliability, std::move(hooks));
  if (acked()) seen_.resize(graph.size());

  nodes_.reserve(graph.size());
  for (PeerId p = 0; p < graph.size(); ++p) {
    nodes_.push_back(std::make_unique<PubSubNode>(p, *this));
    sim_->add_node(*nodes_[p]);
  }
}

PubSubSystem::~PubSubSystem() = default;

void PubSubSystem::forward_control(PeerId self, sim::MessageKind kind,
                                   const GroupRequest& request) {
  GroupStats& stats = manager_->stats(request.group);
  const PeerId next = overlay::greedy_next_hop(
      graph_, self, request.target, [this](PeerId q) { return manager_->alive(q); });
  if (next == kInvalidPeer) {
    ++stats.stranded_messages;
    return;
  }
  ++stats.control_messages;
  sim_->send(self, next, kind, request);
}

void PubSubSystem::handle_at_root(PeerId self, sim::MessageKind kind,
                                  const GroupRequest& request) {
  switch (kind) {
    case kSubscribeKind:
      // The origin may have departed while its request was in flight; a
      // dead peer must not (re)enter the membership.
      if (manager_->alive(request.origin))
        manager_->subscribe(request.group, request.origin);
      return;
    case kUnsubscribeKind:
      manager_->unsubscribe(request.group, request.origin);
      return;
    case kPublishKind: {
      GroupStats& stats = manager_->stats(request.group);
      ++stats.publishes;
      const auto snapshot = manager_->tree_snapshot(request.group);
      if (snapshot == nullptr) return;  // nobody subscribed
      stats.expected_deliveries += snapshot->reached_subscribers;
      disseminate(self, kInvalidPeer,
                  GroupDelivery{request.group, next_seq_[request.group]++,
                                next_wave_++, snapshot});
      return;
    }
    default:
      throw std::logic_error("PubSubSystem: control kind expected");
  }
}

void PubSubSystem::disseminate(PeerId self, PeerId from, const GroupDelivery& delivery) {
  GroupStats& stats = manager_->stats(delivery.group);
  if (acked() && from != kInvalidPeer) {
    // Ack before anything else — a dedup hit included. The duplicate's
    // arrival means our previous ack may have been the lost message; an
    // unacked sender would retransmit until its budget died on a hop that
    // already delivered.
    ++stats.ack_messages;
    hop_->acknowledge(self, from, delivery.wave);
  }
  if (acked() && !seen_[self].emplace(delivery.group, delivery.seq).second) {
    ++stats.duplicate_deliveries;
    sim_->network().note_duplicate();
    return;  // re-acked above, but never re-delivered or re-forwarded
  }
  // Forwarding reads the wave's own snapshot, never the live cache — a
  // mid-wave graft/prune/rebuild affects later publishes only. Under QoS 0
  // the dedup above is moot: the snapshot is a tree (one parent per peer)
  // and every wave has a unique (group, seq), so without retransmissions a
  // peer can never receive the same wave twice.
  const GroupTree* gt = delivery.tree.get();
  if (gt == nullptr || !gt->tree.reached(self)) return;
  if (gt->is_subscriber[self]) ++stats.deliveries;
  for (PeerId child : gt->tree.children(self)) {
    ++stats.payload_messages;
    hop_->send(self, child, delivery.wave, delivery);
  }
}

void PubSubSystem::schedule_control(double time, PeerId peer, GroupId group,
                                    sim::MessageKind kind) {
  sim_->schedule_at(time, [this, peer, group, kind]() {
    if (!manager_->alive(peer)) return;
    const GroupRequest request{group, peer, manager_->root_of(group)};
    if (peer == request.target)
      handle_at_root(peer, kind, request);
    else
      forward_control(peer, kind, request);
  });
}

void PubSubSystem::subscribe_at(double time, PeerId peer, GroupId group) {
  schedule_control(time, peer, group, kSubscribeKind);
}

void PubSubSystem::unsubscribe_at(double time, PeerId peer, GroupId group) {
  schedule_control(time, peer, group, kUnsubscribeKind);
}

void PubSubSystem::publish_at(double time, PeerId peer, GroupId group) {
  schedule_control(time, peer, group, kPublishKind);
}

void PubSubSystem::depart_at(double time, PeerId peer) {
  sim_->schedule_at(time, [this, peer]() { manager_->handle_departure(peer); });
}

std::size_t PubSubSystem::run(std::size_t max_events) {
  return sim_->run_until_idle(max_events);
}

}  // namespace geomcast::groups
