#include "groups/group_tree.hpp"

#include <deque>
#include <stdexcept>
#include <utility>

#include "geometry/distance.hpp"
#include "multicast/local_rule.hpp"
#include "multicast/zone.hpp"
#include "overlay/routing.hpp"
#include "stability/churn.hpp"

namespace geomcast::groups {

namespace {

bool is_alive(const std::vector<bool>& alive, PeerId p) {
  return alive.empty() || alive[p];
}

/// Overlay neighbours of `p` that are up, as selection candidates.
std::vector<overlay::Candidate> alive_neighbors(const overlay::OverlayGraph& graph,
                                                PeerId p, const std::vector<bool>& alive) {
  std::vector<overlay::Candidate> result;
  for (PeerId q : graph.neighbors(p))
    if (is_alive(alive, q)) result.push_back(overlay::Candidate{q, graph.point(q)});
  return result;
}

/// Removes the relay-only leaf chain starting at `v` (stops at the root, a
/// subscriber, or a branching point). Returns edges removed.
std::size_t cascade_relays(GroupTree& gt, PeerId v) {
  std::size_t removed = 0;
  while (v != gt.tree.root() && !gt.is_subscriber[v] && gt.tree.reached(v) &&
         gt.tree.children(v).empty()) {
    const PeerId up = gt.tree.parent(v);
    gt.tree.remove_leaf(v);
    ++removed;
    v = up;
  }
  return removed;
}

void check_deterministic(const multicast::MulticastConfig& config) {
  if (config.policy == multicast::PickPolicy::kRandom)
    throw std::invalid_argument(
        "groups: PickPolicy::kRandom is not supported — incremental tree "
        "maintenance requires deterministic delegate selection");
}

}  // namespace

GroupTree build_group_tree(const overlay::OverlayGraph& graph, PeerId root,
                           const std::vector<bool>& subscribers,
                           const multicast::MulticastConfig& config,
                           const std::vector<bool>& alive) {
  const std::size_t n = graph.size();
  if (root >= n) throw std::invalid_argument("build_group_tree: root out of range");
  if (subscribers.size() != n)
    throw std::invalid_argument("build_group_tree: subscriber mask size mismatch");
  if (!alive.empty() && alive.size() != n)
    throw std::invalid_argument("build_group_tree: alive mask size mismatch");
  check_deterministic(config);

  GroupTree gt;
  gt.tree = multicast::MulticastTree(n, root);
  gt.zones.assign(n, geometry::Rect(graph.dims()));
  gt.is_subscriber = subscribers;
  std::vector<PeerId> subscriber_ids;
  for (PeerId p = 0; p < n; ++p)
    if (subscribers[p]) {
      if (!is_alive(alive, p))
        throw std::invalid_argument("build_group_tree: subscriber is not alive");
      ++gt.subscriber_count;
      subscriber_ids.push_back(p);
    }

  // Each queue entry carries the subscribers strictly inside its zone;
  // sibling slices are disjoint, so every subscriber follows exactly one
  // root-to-slice path and the total pruning work is O(S x depth), not
  // O(tree_nodes x assignments x S).
  struct Pending {
    PeerId peer;
    geometry::Rect zone;
    std::vector<PeerId> subs;
  };
  gt.zones[root] = multicast::initiator_zone(graph.dims());
  std::deque<Pending> queue;
  queue.push_back(Pending{root, gt.zones[root], subscriber_ids});

  while (!queue.empty()) {
    const Pending current = std::move(queue.front());
    queue.pop_front();

    const auto neighbors = alive_neighbors(graph, current.peer, alive);
    const auto assignments = multicast::partition_step(
        graph.point(current.peer), current.zone, neighbors, config.policy, config.metric);
    std::vector<std::vector<PeerId>> split(assignments.size());
    for (PeerId s : current.subs)
      for (std::size_t i = 0; i < assignments.size(); ++i)
        if (assignments[i].zone.contains_interior(graph.point(s))) {
          split[i].push_back(s);
          break;
        }
    for (std::size_t i = 0; i < assignments.size(); ++i) {
      if (split[i].empty()) continue;  // pruned: slice holds no subscriber
      const multicast::ZoneAssignment& a = assignments[i];
      ++gt.build_messages;
      gt.tree.add_edge(current.peer, a.child);
      gt.zones[a.child] = a.zone;
      queue.push_back(Pending{a.child, a.zone, std::move(split[i])});
    }
  }
  for (PeerId s : subscriber_ids)
    if (gt.tree.reached(s)) ++gt.reached_subscribers;
  return gt;
}

GraftCursor graft_cursor(const GroupTree& gt, PeerId s) {
  return GraftCursor{s, gt.tree.root(), 0};
}

GraftStep graft_step(const overlay::OverlayGraph& graph, GroupTree& gt,
                     GraftCursor& cursor, const multicast::MulticastConfig& config,
                     const std::vector<bool>& alive) {
  const PeerId s = cursor.subscriber;
  if (s >= graph.size()) throw std::invalid_argument("graft_step: peer out of range");
  if (gt.zones_stale)
    throw std::logic_error("graft_step: zones are stale after a repair; rebuild");
  check_deterministic(config);

  if (gt.tree.reached(s)) {
    // Already spanned: a re-subscribe, a relay promotion, or (mid-descent)
    // a concurrent graft that recruited s as a relay first. Flip the
    // delivery flag and stop — no further descent decision is owed.
    if (!gt.is_subscriber[s]) {
      gt.is_subscriber[s] = true;
      ++gt.subscriber_count;
      ++gt.reached_subscribers;
    }
    return GraftStep{GraftStatus::kAttached, s};
  }
  // Every decision either follows an existing edge or creates the next
  // missing one, so a legal descent is bounded by the tree height plus the
  // new path's length; past the peer count the cache is inconsistent.
  if (cursor.steps > graph.size()) return GraftStep{GraftStatus::kExhausted};

  const geometry::Point& target = graph.point(s);
  const auto neighbors = alive_neighbors(graph, cursor.current, alive);
  const auto assignments =
      multicast::partition_step(graph.point(cursor.current), gt.zones[cursor.current],
                                neighbors, config.policy, config.metric);
  const multicast::ZoneAssignment* next = nullptr;
  for (const multicast::ZoneAssignment& a : assignments)
    if (a.zone.contains_interior(target)) {
      next = &a;
      break;
    }
  if (next == nullptr) return GraftStep{GraftStatus::kStranded};
  ++cursor.steps;
  if (!gt.tree.reached(next->child)) {
    gt.tree.add_edge(cursor.current, next->child);
    gt.zones[next->child] = next->zone;
    // A stranded subscriber recruited as a relay is spanned again.
    if (gt.is_subscriber[next->child]) ++gt.reached_subscribers;
  }
  cursor.current = next->child;
  if (cursor.current == s) {
    if (!gt.is_subscriber[s]) {
      gt.is_subscriber[s] = true;
      ++gt.subscriber_count;
      ++gt.reached_subscribers;
    }
    return GraftStep{GraftStatus::kAttached, s};
  }
  return GraftStep{GraftStatus::kDescend, cursor.current};
}

GraftResult graft_subscriber(const overlay::OverlayGraph& graph, GroupTree& gt, PeerId s,
                             const multicast::MulticastConfig& config,
                             const std::vector<bool>& alive) {
  // The synchronous oracle: the routed control plane's step function,
  // looped to completion in place. Keeping it a pure wrapper is what makes
  // "routed == local" a structural property rather than a parallel
  // implementation to keep in sync.
  GraftResult result;
  GraftCursor cursor = graft_cursor(gt, s);
  for (;;) {
    const GraftStep step = graft_step(graph, gt, cursor, config, alive);
    result.messages = cursor.steps;
    switch (step.status) {
      case GraftStatus::kAttached:
        result.attached = true;
        return result;
      case GraftStatus::kDescend:
        continue;
      case GraftStatus::kStranded:
      case GraftStatus::kExhausted:
        return result;  // caller falls back to a rebuild
    }
  }
}

std::size_t prune_subscriber(GroupTree& gt, PeerId s) {
  if (s >= gt.is_subscriber.size())
    throw std::invalid_argument("prune_subscriber: peer out of range");
  if (!gt.is_subscriber[s]) return 0;
  gt.is_subscriber[s] = false;
  --gt.subscriber_count;
  if (!gt.tree.reached(s)) return 0;
  --gt.reached_subscribers;
  return cascade_relays(gt, s);
}

GroupRepairResult repair_group_tree(const overlay::OverlayGraph& graph, GroupTree& gt,
                                    PeerId departed, const std::vector<bool>& alive) {
  if (departed >= graph.size())
    throw std::invalid_argument("repair_group_tree: peer out of range");
  if (alive.size() != graph.size())
    throw std::invalid_argument("repair_group_tree: alive mask size mismatch");
  if (departed == gt.tree.root())
    throw std::invalid_argument("repair_group_tree: migrate the root before repairing");

  GroupRepairResult result;
  if (gt.is_subscriber[departed]) {
    gt.is_subscriber[departed] = false;
    --gt.subscriber_count;
    if (gt.tree.reached(departed)) --gt.reached_subscribers;
  }
  if (!gt.tree.reached(departed)) return result;

  // Orphans are processed one at a time so the adopt/splice predicates see
  // the tree as already-mended orphans left it (no stale-cycle surprises).
  const std::vector<PeerId> orphans = gt.tree.children(departed);
  for (PeerId orphan : orphans) {
    // First the stability-layer rule: adopt under an alive in-tree overlay
    // neighbour outside the orphan's own subtree, nearest first.
    const auto repaired = stability::repair_orphans(
        graph, {orphan},
        [&](PeerId o, PeerId q) {
          return alive[q] && q != departed && gt.tree.reached(q) &&
                 !gt.tree.in_subtree(o, q);
        },
        [&](PeerId q, PeerId incumbent) {
          return geometry::l1_distance(graph.point(q), graph.point(orphan)) <
                 geometry::l1_distance(graph.point(incumbent), graph.point(orphan));
        });
    if (!repaired.reattached.empty()) {
      gt.tree.reattach(orphan, repaired.reattached.front().second);
      ++result.reattached;
      ++result.messages;
      continue;
    }

    // Fallback: splice onto the greedy route toward the tree root. Every
    // hop is an overlay edge; the first in-tree peer outside the orphan's
    // subtree adopts the chain.
    std::vector<PeerId> chain;  // non-tree relays between orphan and adopter
    PeerId cursor = orphan;
    PeerId adopter = kInvalidPeer;
    const auto usable = [&](PeerId q) { return alive[q] && q != departed; };
    for (std::size_t guard = 0; guard < graph.size(); ++guard) {
      const PeerId next = overlay::greedy_next_hop(graph, cursor, gt.tree.root(), usable);
      if (next == kInvalidPeer) break;  // stranded
      if (gt.tree.reached(next)) {
        if (gt.tree.in_subtree(orphan, next)) break;  // cannot thread through itself
        adopter = next;
        break;
      }
      chain.push_back(next);
      cursor = next;
    }
    if (adopter == kInvalidPeer) {
      result.needs_rebuild = true;
      continue;
    }
    // Attach the chain from the adopter downward, then hand it the orphan.
    PeerId parent = adopter;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      gt.tree.add_edge(parent, *it);
      // A stranded subscriber recruited as a splice relay is spanned again.
      if (gt.is_subscriber[*it]) ++gt.reached_subscribers;
      ++result.spliced_relays;
      ++result.messages;
      parent = *it;
    }
    gt.tree.reattach(orphan, parent);
    ++result.reattached;
    ++result.messages;
  }

  if (!result.needs_rebuild) {
    const PeerId old_parent = gt.tree.parent(departed);
    gt.tree.remove_leaf(departed);
    // The departed peer may have shielded a relay-only chain; its removal
    // is repair control traffic like the prune path's cascades.
    result.messages += cascade_relays(gt, old_parent);
  }
  // Even a pure leaf removal stales the zones: the departed peer leaves
  // the candidate sets of its in-tree overlay neighbours, so replaying the
  // recursion (what a graft does) would pick different delegates there.
  gt.zones_stale = true;
  return result;
}

StrandRescueResult rescue_stranded(const overlay::OverlayGraph& graph, GroupTree& gt,
                                   const std::vector<bool>& alive) {
  StrandRescueResult result;
  if (gt.reached_subscribers == gt.subscriber_count) return result;
  const auto usable = [&](PeerId q) { return is_alive(alive, q); };
  for (PeerId s = 0; s < gt.is_subscriber.size(); ++s) {
    if (!gt.is_subscriber[s] || gt.tree.reached(s)) continue;
    // Same shape as repair's splice fallback, with a single stranded peer
    // instead of an orphan subtree: greedy-walk toward the root, recruit
    // the non-tree relays passed through, attach at the first in-tree
    // peer. (An earlier rescue may already have recruited s as a relay —
    // the reached() check above skips it, spanned.)
    std::vector<PeerId> chain;
    PeerId cursor = s;
    PeerId adopter = kInvalidPeer;
    for (std::size_t guard = 0; guard < graph.size(); ++guard) {
      const PeerId next = overlay::greedy_next_hop(graph, cursor, gt.tree.root(), usable);
      if (next == kInvalidPeer) break;  // truly unreachable from here
      if (gt.tree.reached(next)) {
        adopter = next;
        break;
      }
      chain.push_back(next);
      cursor = next;
    }
    if (adopter == kInvalidPeer) {
      ++result.still_stranded;
      continue;
    }
    PeerId parent = adopter;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      gt.tree.add_edge(parent, *it);
      if (gt.is_subscriber[*it]) ++gt.reached_subscribers;
      ++result.spliced_relays;
      ++result.messages;
      parent = *it;
    }
    gt.tree.add_edge(parent, s);
    ++gt.reached_subscribers;
    ++result.rescued;
    ++result.messages;
  }
  // Splice paths are not what the recursion would have produced: replaying
  // a zone descent against them is undefined, so grafts must rebuild.
  if (result.rescued > 0 || result.spliced_relays > 0) gt.zones_stale = true;
  return result;
}

}  // namespace geomcast::groups
