#include "groups/group_manager.hpp"

#include <limits>
#include <stdexcept>

#include "geometry/distance.hpp"
#include "util/rng.hpp"

namespace geomcast::groups {

std::size_t RetainedBuffer::retain(std::uint64_t lo, std::uint64_t hi,
                                   std::any payload) {
  if (hi < lo) throw std::invalid_argument("RetainedBuffer::retain: hi < lo");
  // Re-retaining a held range (same lo) overwrites in place; drop the old
  // width before adding the new so covered_ stays exact either way.
  const auto held = entries_.find(lo);
  if (held != entries_.end())
    covered_ -= static_cast<std::size_t>(held->second.seq_hi - lo + 1);
  entries_.insert_or_assign(lo, Entry{hi, std::move(payload)});
  covered_ += static_cast<std::size_t>(hi - lo + 1);
  std::size_t evicted = 0;
  while (covered_ > capacity_) {  // lowest ranges go first
    const auto oldest = entries_.begin();
    const std::size_t width =
        static_cast<std::size_t>(oldest->second.seq_hi - oldest->first + 1);
    covered_ -= width;
    evicted += width;
    entries_.erase(oldest);
  }
  return evicted;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> RetainedBuffer::ranges() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(entries_.size());
  for (const auto& [lo, entry] : entries_) out.emplace_back(lo, entry.seq_hi);
  return out;
}

const std::any* RetainedBuffer::find(std::uint64_t seq) const {
  // The covering range, if any: the last entry starting at or below seq.
  auto it = entries_.upper_bound(seq);
  if (it == entries_.begin()) return nullptr;
  --it;
  return it->second.seq_hi >= seq ? &it->second.payload : nullptr;
}

GroupManager::GroupManager(const overlay::OverlayGraph& graph, GroupConfig config)
    : graph_(graph),
      config_(config),
      alive_(graph.size(), true),
      retained_(graph.size()) {
  if (graph.size() == 0)
    throw std::invalid_argument("GroupManager: empty overlay");
  // The peer set is immutable for this manager's lifetime; cache its
  // bounding box for rendezvous hashing.
  const std::size_t dims = graph.dims();
  bounds_lo_.assign(dims, std::numeric_limits<double>::infinity());
  bounds_hi_.assign(dims, -std::numeric_limits<double>::infinity());
  for (const geometry::Point& p : graph.points())
    for (std::size_t d = 0; d < dims; ++d) {
      bounds_lo_[d] = std::min(bounds_lo_[d], p[d]);
      bounds_hi_[d] = std::max(bounds_hi_[d], p[d]);
    }
}

geometry::Point GroupManager::hash_point(GroupId group, std::uint32_t slot) const {
  // Hash the group id to a point inside the peers' bounding box — any peer
  // can recompute this locally from the group id, so the rendezvous needs
  // no directory. Replica slots salt the stream before the per-dimension
  // draws; slot 0's salt is zero, so its point is bit-identical to the
  // historic single-root rendezvous point.
  const std::size_t dims = graph_.dims();
  std::uint64_t sm = config_.rendezvous_seed ^ (group * 0x9e3779b97f4a7c15ULL);
  sm ^= static_cast<std::uint64_t>(slot) * 0xbf58476d1ce4e5b9ULL;
  geometry::Point target(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const double frac =
        static_cast<double>(util::split_mix64(sm) >> 11) * 0x1.0p-53;
    target[d] = bounds_lo_[d] + (bounds_hi_[d] - bounds_lo_[d]) * frac;
  }
  return target;
}

PeerId GroupManager::nearest_to(const geometry::Point& target, const PeerId* exclude,
                                std::size_t exclude_count) const {
  PeerId best = kInvalidPeer;
  double best_dist = 0.0;
  for (PeerId p = 0; p < graph_.size(); ++p) {
    if (!alive_[p]) continue;
    bool excluded = false;
    for (std::size_t i = 0; i < exclude_count; ++i)
      if (p == exclude[i]) {
        excluded = true;
        break;
      }
    if (excluded) continue;
    const double dist = geometry::l1_distance(graph_.point(p), target);
    if (best == kInvalidPeer || dist < best_dist) {
      best = p;
      best_dist = dist;
    }
  }
  return best;
}

PeerId GroupManager::rendezvous_nearest(GroupId group, PeerId exclude) const {
  // With `exclude` set to the current root, the scan yields the group's
  // replica: the deterministic successor a root death would promote.
  return nearest_to(hash_point(group, 0), &exclude, 1);
}

PeerId GroupManager::rendezvous_root(GroupId group) const {
  const PeerId best = rendezvous_nearest(group, kInvalidPeer);
  if (best == kInvalidPeer)
    throw std::runtime_error("GroupManager: no alive peer can host the group");
  return best;
}

GroupManager::GroupState& GroupManager::state_of_slow(GroupId group) {
  auto [it, inserted] = groups_.try_emplace(group);
  GroupState& gs = it->second;
  if (inserted) {
    gs.subscribers.assign(graph_.size(), false);
    gs.root = rendezvous_root(group);
    if (config_.root_replicas > 1) init_slots(group, gs);
  }
  state_cache_group_ = group;
  state_cache_ = &gs;
  return gs;
}

void GroupManager::init_slots(GroupId group, GroupState& gs) {
  const std::size_t replicas = config_.root_replicas;
  gs.anchors.reserve(replicas);
  for (std::uint32_t s = 0; s < replicas; ++s)
    gs.anchors.push_back(hash_point(group, s));
  gs.slots.resize(replicas);
  for (ShardSlot& slot : gs.slots) slot.members.assign(graph_.size(), false);
  // Slot 0's anchor is the legacy rendezvous point, so its root is the
  // legacy root; later slots exclude the earlier roots so R alive peers
  // yield R distinct replicas.
  gs.slots[0].root = gs.root;
  for (std::uint32_t s = 1; s < replicas; ++s)
    gs.slots[s].root = recompute_slot_root(gs, s);
}

std::uint32_t GroupManager::owner_slot_of(const GroupState& gs, PeerId peer) const {
  const geometry::Point& at = graph_.point(peer);
  std::uint32_t best = 0;
  double best_dist = geometry::l1_distance(at, gs.anchors[0]);
  for (std::uint32_t s = 1; s < gs.anchors.size(); ++s) {
    const double dist = geometry::l1_distance(at, gs.anchors[s]);
    if (dist < best_dist) {  // ties go to the lowest slot
      best = s;
      best_dist = dist;
    }
  }
  return best;
}

PeerId GroupManager::recompute_slot_root(const GroupState& gs, std::uint32_t slot) const {
  PeerId exclude[64];
  std::size_t exclude_count = 0;
  for (std::uint32_t s = 0; s < gs.slots.size(); ++s) {
    if (s == slot) continue;
    const PeerId other = gs.slots[s].root;
    if (other != kInvalidPeer && exclude_count < 64) exclude[exclude_count++] = other;
  }
  const PeerId best = nearest_to(gs.anchors[slot], exclude, exclude_count);
  // Fewer alive peers than replicas: double up rather than orphan the slot.
  if (best != kInvalidPeer) return best;
  return nearest_to(gs.anchors[slot], nullptr, 0);
}

PeerId GroupManager::root_of(GroupId group) { return state_of(group).root; }

std::uint32_t GroupManager::owner_slot(GroupId group, PeerId peer) {
  if (config_.root_replicas <= 1) return 0;
  return owner_slot_of(state_of(group), peer);
}

PeerId GroupManager::slot_root(GroupId group, std::uint32_t slot) {
  GroupState& gs = state_of(group);
  if (gs.slots.empty()) return gs.root;
  return gs.slots[slot].root;
}

PeerId GroupManager::owner_root(GroupId group, PeerId peer) {
  GroupState& gs = state_of(group);
  if (gs.slots.empty()) return gs.root;
  return gs.slots[owner_slot_of(gs, peer)].root;
}

std::shared_ptr<const GroupTree> GroupManager::slot_tree_snapshot(GroupId group,
                                                                  std::uint32_t slot) {
  GroupState& gs = state_of(group);
  if (gs.slots.empty()) {
    if (gs.count == 0) return nullptr;
    refresh_tree(group, gs);
    return gs.cached;
  }
  ShardSlot& s = gs.slots[slot];
  if (s.count == 0) return nullptr;
  refresh_slot_tree(group, gs, slot);
  return s.cached;
}

std::size_t GroupManager::slot_member_count(GroupId group, std::uint32_t slot) {
  GroupState& gs = state_of(group);
  if (gs.slots.empty()) return gs.count;
  return gs.slots[slot].count;
}

void GroupManager::subscribe(GroupId group, PeerId peer) {
  if (peer >= graph_.size())
    throw std::invalid_argument("GroupManager::subscribe: peer out of range");
  if (!alive_[peer])
    throw std::invalid_argument("GroupManager::subscribe: peer has departed");
  GroupState& gs = state_of(group);
  if (gs.subscribers[peer]) return;  // duplicate subscribe is a no-op
  gs.subscribers[peer] = true;
  ++gs.count;
  ++gs.stats.subscribes;
  if (!gs.slots.empty()) {
    // Sharded: the membership lands in the owner slot's shard; the graft
    // rule below applies to the shard tree, not a whole-group tree.
    ShardSlot& slot = gs.slots[owner_slot_of(gs, peer)];
    slot.members[peer] = true;
    ++slot.count;
    if (slot.cached && !slot.dirty && !slot.cached->zones_stale) {
      const auto graft =
          graft_subscriber(graph_, writable_tree(slot.cached), peer, config_.tree, alive_);
      if (graft.attached) {
        ++gs.stats.grafts;
        gs.stats.graft_messages += graft.messages;
      } else {
        slot.dirty = true;
      }
    } else {
      slot.dirty = true;
    }
    return;
  }
  if (gs.cached && !gs.dirty && !gs.cached->zones_stale) {
    const auto graft = graft_subscriber(graph_, writable_tree(gs.cached), peer, config_.tree, alive_);
    if (graft.attached) {
      // Grafts are exact (the tree equals a fresh build), so they do not
      // count toward drift.
      ++gs.stats.grafts;
      gs.stats.graft_messages += graft.messages;
    } else {
      gs.dirty = true;  // stranded graft: rebuild lazily on next publish
    }
  } else {
    gs.dirty = true;
  }
}

void GroupManager::unsubscribe(GroupId group, PeerId peer) {
  if (peer >= graph_.size())
    throw std::invalid_argument("GroupManager::unsubscribe: peer out of range");
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;  // unknown group: no-op, no state created
  GroupState& gs = it->second;
  if (!gs.subscribers[peer]) return;
  gs.subscribers[peer] = false;
  --gs.count;
  ++gs.stats.unsubscribes;
  if (!gs.slots.empty()) {
    ShardSlot& slot = gs.slots[owner_slot_of(gs, peer)];
    if (slot.members[peer]) {
      slot.members[peer] = false;
      --slot.count;
    }
    if (slot.cached && !slot.dirty && slot.cached->is_subscriber[peer]) {
      const bool touched = slot.cached->tree.reached(peer);
      const std::size_t removed = prune_subscriber(writable_tree(slot.cached), peer);
      if (touched) {
        ++gs.stats.prunes;
        gs.stats.prune_messages += removed;
      }
    }
    return;
  }
  if (gs.cached && !gs.dirty && gs.cached->is_subscriber[peer]) {
    // Only a spanned subscriber's departure edits the tree; a stranded one
    // is membership-only and must not count toward drift.
    const bool touched = gs.cached->tree.reached(peer);
    const std::size_t removed = prune_subscriber(writable_tree(gs.cached), peer);
    if (touched) {  // prunes are exact too: no drift, just bookkeeping
      ++gs.stats.prunes;
      gs.stats.prune_messages += removed;
    }
  }
}

GroupManager::SubscribeNeed GroupManager::subscribe_membership(GroupId group,
                                                               PeerId peer) {
  if (peer >= graph_.size())
    throw std::invalid_argument("GroupManager::subscribe_membership: peer out of range");
  if (!alive_[peer])
    throw std::invalid_argument("GroupManager::subscribe_membership: peer has departed");
  GroupState& gs = state_of(group);
  const bool fresh = !gs.subscribers[peer];
  if (fresh) {
    gs.subscribers[peer] = true;
    ++gs.count;
    ++gs.stats.subscribes;
  }
  if (!gs.slots.empty()) {
    // Sharded: book the shard membership and answer the graft question
    // against the owner slot's tree — the same rule, scoped to the shard.
    ShardSlot& slot = gs.slots[owner_slot_of(gs, peer)];
    if (fresh) {
      slot.members[peer] = true;
      ++slot.count;
    }
    const bool slot_graftable =
        slot.cached && !slot.dirty && !slot.cached->zones_stale;
    if (slot_graftable &&
        !(slot.cached->is_subscriber[peer] && slot.cached->tree.reached(peer)))
      return SubscribeNeed::kGraft;
    if (fresh && !slot_graftable) slot.dirty = true;
    return SubscribeNeed::kNone;
  }
  const bool graftable = gs.cached && !gs.dirty && !gs.cached->zones_stale;
  if (graftable &&
      !(gs.cached->is_subscriber[peer] && gs.cached->tree.reached(peer)))
    return SubscribeNeed::kGraft;
  // Mirror subscribe(): a fresh member without a graftable tree rides the
  // next publish's lazy rebuild; duplicates leave the cache flags alone.
  if (fresh && !graftable) gs.dirty = true;
  return SubscribeNeed::kNone;
}

std::uint64_t GroupManager::graft_begin(GroupId group, PeerId subscriber, PeerId root) {
  GroupState& gs = state_of(group);
  if (subscriber >= graph_.size() || !alive_[subscriber] ||
      !gs.subscribers[subscriber])
    return 0;
  // Sharded groups graft into the subscriber's owner-slot tree; the view
  // binds the legacy whole-group fields otherwise, so the checks and the
  // cursor are exactly the historic ones at R == 1.
  const std::uint32_t slot = gs.slots.empty() ? 0 : owner_slot_of(gs, subscriber);
  const SlotView v = view_of(gs, slot);
  if (v.root != root || !*v.cached || *v.dirty || (*v.cached)->zones_stale) return 0;
  if (!grafting_.insert({group, subscriber}).second) return 0;  // one at a time
  const std::uint64_t id = next_graft_id_++;
  grafts_.emplace(id, InFlightGraft{group, subscriber, root, slot,
                                    graft_cursor(**v.cached, subscriber), clock_now()});
  if (tracer_.enabled())
    tracer_.emit({clock_now(), obs::TraceEventType::kGraftBegin, group, id, 0, 0,
                  root, subscriber});
  return id;
}

GroupManager::GraftAdvance GroupManager::graft_advance(std::uint64_t graft_id,
                                                       PeerId self) {
  GraftAdvance advance;  // kFailed unless proven otherwise
  const auto it = grafts_.find(graft_id);
  if (it == grafts_.end()) return advance;  // aborted while the request flew
  InFlightGraft& g = it->second;
  GroupState& gs = groups_.at(g.group);
  const SlotView v = view_of(gs, g.slot);
  // The cursor is only valid against the exact tree state it left: any
  // rebuild, repair (stale zones), migration, membership change, or death
  // of subscriber/current since the previous step fails the descent here
  // rather than replaying it against a tree it never saw.
  if (!alive_[g.subscriber] || !gs.subscribers[g.subscriber] || v.root != g.root ||
      !*v.cached || *v.dirty || (*v.cached)->zones_stale ||
      self != g.cursor.current || !(*v.cached)->tree.reached(g.cursor.current))
    return advance;
  const std::size_t decisions_before = g.cursor.steps;
  const GraftStep step = graft_step(graph_, writable_tree(*v.cached), g.cursor,
                                    config_.tree, alive_);
  gs.stats.graft_messages += g.cursor.steps - decisions_before;
  switch (step.status) {
    case GraftStatus::kAttached:
      advance.status = GraftAdvance::Status::kAttached;
      break;  // the entry retires on the root's graft_finish
    case GraftStatus::kDescend:
      advance.status = GraftAdvance::Status::kDescend;
      advance.next = step.next;
      break;
    case GraftStatus::kStranded:
    case GraftStatus::kExhausted:
      break;  // kFailed: caller reports reject, the root aborts
  }
  return advance;
}

bool GroupManager::graft_finish(std::uint64_t graft_id) {
  const auto it = grafts_.find(graft_id);
  if (it == grafts_.end()) return false;
  GroupState& gs = groups_.at(it->second.group);
  const PeerId subscriber = it->second.subscriber;
  ++gs.stats.grafts;
  // Request -> attach latency; meaningful only when a clock is wired (the
  // message-driven pipeline always wires one, so the sample set does not
  // depend on whether tracing is attached).
  if (clock_) gs.stats.graft_latency.record(clock_() - it->second.started_at);
  if (tracer_.enabled())
    tracer_.emit({clock_now(), obs::TraceEventType::kGraftFinish, it->second.group,
                  graft_id, 0, 0, it->second.root, subscriber});
  // Revalidate before retiring: membership can churn while the accept is
  // in flight. An unsubscribe prunes the attached subscriber out of the
  // still-clean tree, and a re-subscribe landing before this finish is
  // blocked by the in-flight guard below (graft_begin returns 0) — so a
  // member can end up owed a span no descent will ever provide. Defer to
  // a rebuild rather than leave a clean cache that never delivers.
  const SlotView v = view_of(gs, it->second.slot);
  if (gs.subscribers[subscriber] && *v.cached && !*v.dirty &&
      !((*v.cached)->is_subscriber[subscriber] &&
        (*v.cached)->tree.reached(subscriber)))
    *v.dirty = true;
  grafting_.erase({it->second.group, subscriber});
  grafts_.erase(it);
  return true;
}

std::optional<GroupManager::AbortedGraft> GroupManager::graft_abort(
    std::uint64_t graft_id) {
  const auto it = grafts_.find(graft_id);
  if (it == grafts_.end()) return std::nullopt;
  const AbortedGraft aborted{it->second.group, it->second.subscriber};
  GroupState& gs = groups_.at(aborted.group);
  // The half-grafted relay path (if any) serves nobody: dirty the cache so
  // the next publish rebuilds — spanning the subscriber's membership if it
  // survived — instead of publishing down dangling edges forever.
  *view_of(gs, it->second.slot).dirty = true;
  ++gs.stats.graft_aborts;
  if (tracer_.enabled())
    tracer_.emit({clock_now(), obs::TraceEventType::kGraftAbort, aborted.group,
                  graft_id, 0, 0, it->second.root, aborted.subscriber});
  grafting_.erase({aborted.group, aborted.subscriber});
  grafts_.erase(it);
  return aborted;
}

bool GroupManager::is_subscribed(GroupId group, PeerId peer) const {
  const auto it = groups_.find(group);
  return it != groups_.end() && peer < it->second.subscribers.size() &&
         it->second.subscribers[peer];
}

std::size_t GroupManager::subscriber_count(GroupId group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.count;
}

GroupTree& GroupManager::writable_tree(std::shared_ptr<GroupTree>& cached) {
  if (cached.use_count() > 1)
    cached = std::make_shared<GroupTree>(*cached);
  return *cached;
}

GroupTree& GroupManager::writable_tree_stale(std::shared_ptr<GroupTree>& cached) {
  if (cached.use_count() > 1) {
    const GroupTree& src = *cached;
    auto clone = std::make_shared<GroupTree>();
    clone->tree = src.tree;
    clone->is_subscriber = src.is_subscriber;
    clone->subscriber_count = src.subscriber_count;
    clone->reached_subscribers = src.reached_subscribers;
    clone->build_messages = src.build_messages;
    clone->zones_stale = true;
    cached = std::move(clone);
  } else {
    // Sole owner: no clone needed, but the zones are dead weight now.
    cached->zones.clear();
    cached->zones.shrink_to_fit();
    cached->zones_stale = true;
  }
  return *cached;
}

void GroupManager::refresh_tree_core(GroupId group, GroupStats& stats, PeerId root,
                                     const std::vector<bool>& members,
                                     std::size_t count,
                                     std::shared_ptr<GroupTree>& cached, bool& dirty,
                                     std::size_t& repairs_since_build) {
  const bool drifted =
      repairs_since_build >
      config_.rebuild_threshold * static_cast<double>(std::max<std::size_t>(count, 1));
  if (cached && !dirty && !drifted) {
    ++stats.cache_hits;
    return;
  }
  cached = std::make_shared<GroupTree>(
      build_group_tree(graph_, root, members, config_.tree, alive_));
  dirty = false;
  repairs_since_build = 0;
  ++stats.tree_builds;
  stats.build_messages += cached->build_messages;
  // seq fields double as build cost / span here (kTreeBuild is not
  // seq-scoped, so the wave query never misreads them).
  if (tracer_.enabled())
    tracer_.emit({clock_now(), obs::TraceEventType::kTreeBuild, group, obs::kNoWave,
                  cached->build_messages, cached->reached_subscribers, root});
  // A fresh recursion under churn can strand subscribers a repaired tree
  // kept (a dead delegate walls off their slices); splice them back via
  // greedy routes so a rebuild is never WORSE than the repair it replaced.
  // Rescue paths deviate from the recursion like repairs do, but are not
  // drift: another rebuild would strand — and rescue — identically.
  const auto rescue = rescue_stranded(graph_, *cached, alive_);
  stats.stranded_rescues += rescue.rescued;
  stats.repair_messages += rescue.messages;
  stats.stranded_subscribers =
      cached->subscriber_count - cached->reached_subscribers;
}

void GroupManager::refresh_tree(GroupId group, GroupState& gs) {
  refresh_tree_core(group, gs.stats, gs.root, gs.subscribers, gs.count, gs.cached,
                    gs.dirty, gs.repairs_since_build);
}

void GroupManager::refresh_slot_tree(GroupId group, GroupState& gs,
                                     std::uint32_t slot) {
  ShardSlot& s = gs.slots[slot];
  refresh_tree_core(group, gs.stats, s.root, s.members, s.count, s.cached, s.dirty,
                    s.repairs_since_build);
}

const GroupTree* GroupManager::tree(GroupId group) {
  GroupState& gs = state_of(group);
  if (gs.count == 0) return nullptr;
  refresh_tree(group, gs);
  return gs.cached.get();
}

std::shared_ptr<const GroupTree> GroupManager::tree_snapshot(GroupId group) {
  GroupState& gs = state_of(group);
  if (gs.count == 0) return nullptr;
  refresh_tree(group, gs);
  return gs.cached;
}

const GroupTree* GroupManager::cached_tree(GroupId group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end() || it->second.dirty) return nullptr;
  return it->second.cached.get();
}

std::size_t GroupManager::retain_payload(PeerId peer, GroupId group, std::uint64_t lo,
                                         std::uint64_t hi, std::any payload) {
  if (config_.retention_window == 0) return 0;
  auto& buffer = retained_[peer]
                     .try_emplace(group, config_.retention_window)
                     .first->second;
  const std::size_t evicted = buffer.retain(lo, hi, std::move(payload));
  // Worker lanes track their own peak (a plain max, so the barrier-time
  // fold commutes); the shared gauge is coordinator-only.
  if (lane_fn_ != nullptr) {
    const int lane = lane_fn_();
    if (lane >= 0) {
      auto& peak = lane_retained_peak_[static_cast<std::size_t>(lane)];
      peak = std::max(peak, buffer.size());
      return evicted;
    }
  }
  retained_peak_ = std::max(retained_peak_, buffer.size());
  return evicted;
}

const std::any* GroupManager::retained_payload(PeerId peer, GroupId group,
                                               std::uint64_t seq) const {
  const auto& buffers = retained_[peer];
  const auto git = buffers.find(group);
  if (git == buffers.end()) return nullptr;
  return git->second.find(seq);
}

std::size_t GroupManager::retained_entry_total() const noexcept {
  std::size_t total = 0;
  for (const auto& buffers : retained_)
    for (const auto& [group, buffer] : buffers) total += buffer.size();
  return total;
}

std::size_t GroupManager::retained_buffer_count() const noexcept {
  std::size_t count = 0;
  for (const auto& buffers : retained_) count += buffers.size();
  return count;
}

PeerId GroupManager::replica_candidate(GroupId group) {
  GroupState& gs = state_of(group);
  if (gs.slots.empty()) return rendezvous_nearest(group, gs.root);
  // Sharded: the warm-failover replica must not double as any slot's root,
  // or one death would cost two shards at once.
  PeerId exclude[64];
  std::size_t n = 0;
  for (const ShardSlot& slot : gs.slots)
    if (slot.root != kInvalidPeer && n < 64) exclude[n++] = slot.root;
  return nearest_to(gs.anchors[0], exclude, n);
}

PeerId GroupManager::ensure_replica(GroupId group) {
  GroupState& gs = state_of(group);
  if (gs.replica != kInvalidPeer && alive_[gs.replica]) return gs.replica;
  gs.replica = replica_candidate(group);
  // A fresh assignment knows nothing yet; the protocol layer streams the
  // full bootstrap before any delta relies on this copy.
  gs.replica_members.clear();
  gs.replica_count = 0;
  return gs.replica;
}

PeerId GroupManager::replica_of(GroupId group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? kInvalidPeer : it->second.replica;
}

void GroupManager::replica_apply_membership(GroupId group, PeerId member,
                                            bool subscribed) {
  GroupState& gs = state_of(group);
  if (gs.replica_members.empty()) gs.replica_members.assign(graph_.size(), false);
  if (member >= gs.replica_members.size() ||
      gs.replica_members[member] == subscribed)
    return;
  gs.replica_members[member] = subscribed;
  if (subscribed)
    ++gs.replica_count;
  else
    --gs.replica_count;
}

std::size_t GroupManager::replica_member_count(GroupId group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.replica_count;
}

std::vector<PeerId> GroupManager::subscribers_of(GroupId group) const {
  std::vector<PeerId> members;
  const auto it = groups_.find(group);
  if (it == groups_.end()) return members;
  members.reserve(it->second.count);
  for (PeerId p = 0; p < it->second.subscribers.size(); ++p)
    if (it->second.subscribers[p]) members.push_back(p);
  return members;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> GroupManager::retained_ranges(
    PeerId peer, GroupId group) const {
  const auto& buffers = retained_[peer];
  const auto git = buffers.find(group);
  if (git == buffers.end()) return {};
  return git->second.ranges();
}

GroupManager::PublishReceipt GroupManager::publish(GroupId group) {
  GroupState& gs = state_of(group);
  ++gs.stats.publishes;
  PublishReceipt receipt;
  if (gs.count == 0) return receipt;
  if (!gs.slots.empty()) {
    // Sharded oracle: one shard tree per non-empty slot, summed.
    for (std::uint32_t s = 0; s < gs.slots.size(); ++s) {
      if (gs.slots[s].count == 0) continue;
      refresh_slot_tree(group, gs, s);
      const GroupTree& gt = *gs.slots[s].cached;
      receipt.payload_messages += gt.tree.edge_count();
      receipt.delivered += gt.reached_subscribers;
    }
    gs.stats.payload_messages += receipt.payload_messages;
    gs.stats.expected_deliveries += receipt.delivered;
    gs.stats.deliveries += receipt.delivered;
    return receipt;
  }
  refresh_tree(group, gs);
  const GroupTree& gt = *gs.cached;
  receipt.payload_messages = gt.tree.edge_count();
  receipt.delivered = gt.reached_subscribers;
  gs.stats.payload_messages += receipt.payload_messages;
  gs.stats.expected_deliveries += receipt.delivered;
  gs.stats.deliveries += receipt.delivered;  // synchronous path is lossless
  return receipt;
}

GroupManager::DepartureOutcome GroupManager::handle_departure(PeerId peer) {
  if (peer >= graph_.size())
    throw std::invalid_argument("GroupManager::handle_departure: peer out of range");
  DepartureOutcome outcome;
  if (!alive_[peer]) return outcome;
  alive_[peer] = false;
  // The dead serve no repairs: drop the peer's retained history (NACKs
  // that would have landed here escalate to the next ancestor instead).
  retained_[peer].clear();
  for (auto& [group, gs] : groups_) {
    if (!gs.slots.empty()) {
      handle_departure_sharded_group(group, gs, peer, outcome);
      continue;
    }
    if (gs.subscribers[peer]) {
      gs.subscribers[peer] = false;
      --gs.count;
      // The surviving root owes its replica an unmember delta; a dying
      // root cannot send one (the promotion bootstrap covers it instead).
      if (gs.root != peer) outcome.member_losses.push_back(group);
    }
    if (gs.replica == peer) {
      // The replica died out from under the root: clear the assignment and
      // its copy; the protocol layer re-bootstraps a fresh successor.
      outcome.replica_losses.push_back({group, peer});
      gs.replica = kInvalidPeer;
      gs.replica_members.clear();
      gs.replica_count = 0;
    }
    if (gs.root == peer) {
      // Rendezvous migrates to the next-nearest alive peer; the old root's
      // tree is useless there. When that successor is the established
      // replica (it always is while one is assigned — departures only
      // shrink the alive set), the promotion is warm: the successor keeps
      // the synced subscriber set and its own RetainedBuffer.
      const PeerId old_root = gs.root;
      gs.root = rendezvous_root(group);
      const bool warm = gs.replica != kInvalidPeer && gs.replica == gs.root;
      bool consistent = false;
      if (warm) {
        // Compare the replica's synced copy against the authoritative set,
        // masking dead peers in the copy: a promoted root purges the dead
        // locally (the failure detector is global), so only raced
        // subscribe/unsubscribe deltas of alive peers count as divergence.
        consistent = true;
        for (PeerId p = 0; p < gs.subscribers.size(); ++p) {
          const bool copy = p < gs.replica_members.size() &&
                            gs.replica_members[p] && alive_[p];
          if (copy != static_cast<bool>(gs.subscribers[p])) {
            consistent = false;
            break;
          }
        }
        ++gs.stats.warm_promotions;
      }
      gs.cached.reset();
      gs.dirty = true;
      ++gs.stats.root_migrations;
      // The promoted root owes the group a fresh replica of its own; the
      // old copy's job is done.
      gs.replica = kInvalidPeer;
      gs.replica_members.clear();
      gs.replica_count = 0;
      outcome.promotions.push_back({group, old_root, gs.root, warm, consistent});
      if (tracer_.enabled())
        tracer_.emit({clock_now(), obs::TraceEventType::kRootMigration, group,
                      obs::kNoWave, 0, 0, gs.root, peer});
      continue;
    }
    if (!gs.cached || gs.dirty) continue;
    if (!gs.cached->tree.reached(peer)) {
      const bool stranded_member = gs.cached->is_subscriber[peer];
      // Not in the tree, but the departure still shrinks the candidate
      // sets of any in-tree overlay neighbour — a replayed recursion (what
      // a graft does) would pick different delegates there, so the zones
      // can no longer be trusted for grafting.
      bool neighbours_tree = false;
      for (PeerId q : graph_.neighbors(peer))
        if (gs.cached->tree.reached(q)) {
          neighbours_tree = true;
          break;
        }
      if (stranded_member || neighbours_tree) {
        GroupTree& gt = neighbours_tree ? writable_tree_stale(gs.cached)
                                        : writable_tree(gs.cached);
        if (stranded_member) {  // membership only; never spanned
          gt.is_subscriber[peer] = false;
          --gt.subscriber_count;
        }
        if (neighbours_tree) gt.zones_stale = true;
      }
      continue;
    }
    // repair_group_tree stales the zones unconditionally, so the COW clone
    // skips copying them.
    const auto repair =
        repair_group_tree(graph_, writable_tree_stale(gs.cached), peer, alive_);
    ++gs.stats.repairs;
    gs.stats.repair_messages += repair.messages;
    if (repair.needs_rebuild) {
      ++gs.stats.repair_failures;
      gs.dirty = true;
    } else {
      ++gs.repairs_since_build;
    }
  }
  // Sweep the in-flight grafts: any descent whose ground shifted — its
  // subscriber died or left, its root migrated, its tree was reset or
  // stale-zoned by the repair above, or its current peer fell out of the
  // tree — aborts now rather than limping on to a reject. The survivors
  // (groups the departure never touched) keep descending. For sharded
  // groups the view binds the owner slot's tuple, so a slot-root
  // promotion aborts exactly that shard's descents; the protocol layer
  // re-issues the subscribes, which route to the promoted successor —
  // the shard handoff leaks no cursor.
  for (auto it = grafts_.begin(); it != grafts_.end();) {
    const InFlightGraft& g = it->second;
    GroupState& gs = groups_.at(g.group);
    const SlotView v = view_of(gs, g.slot);
    const bool valid = alive_[g.subscriber] && gs.subscribers[g.subscriber] &&
                       v.root == g.root && *v.cached && !*v.dirty &&
                       !(*v.cached)->zones_stale &&
                       (*v.cached)->tree.reached(g.cursor.current);
    const std::uint64_t id = it->first;
    ++it;  // graft_abort erases `id`; advance first
    if (!valid)
      if (const auto a = graft_abort(id)) outcome.aborted_grafts.push_back(*a);
  }
  return outcome;
}

void GroupManager::handle_departure_sharded_group(GroupId group, GroupState& gs,
                                                  PeerId peer,
                                                  DepartureOutcome& outcome) {
  if (gs.subscribers[peer]) {
    gs.subscribers[peer] = false;
    --gs.count;
    ShardSlot& owner = gs.slots[owner_slot_of(gs, peer)];
    if (owner.members[peer]) {
      owner.members[peer] = false;
      --owner.count;
    }
    // The surviving owner-slot root owes the replica an unmember delta; a
    // dying root cannot send one (the promotion bootstrap covers it).
    if (owner.root != peer) outcome.member_losses.push_back(group);
  }
  if (gs.replica == peer) {
    outcome.replica_losses.push_back({group, peer});
    gs.replica = kInvalidPeer;
    gs.replica_members.clear();
    gs.replica_count = 0;
  }
  for (std::uint32_t s = 0; s < gs.slots.size(); ++s) {
    ShardSlot& slot = gs.slots[s];
    if (slot.root == peer) {
      // Promotion by anchor ownership: the next-nearest alive peer to this
      // slot's (immutable) anchor inherits the whole shard — membership
      // bits and graft cursors live in the slot, not at the peer, so the
      // handoff is a root reassignment, never a cold drop. Only slot 0
      // participates in the warm-failover replica protocol.
      const PeerId old_root = slot.root;
      slot.root = recompute_slot_root(gs, s);
      const bool warm =
          s == 0 && gs.replica != kInvalidPeer && gs.replica == slot.root;
      bool consistent = false;
      if (warm) {
        consistent = true;
        for (PeerId p = 0; p < gs.subscribers.size(); ++p) {
          const bool copy = p < gs.replica_members.size() &&
                            gs.replica_members[p] && alive_[p];
          if (copy != static_cast<bool>(gs.subscribers[p])) {
            consistent = false;
            break;
          }
        }
        ++gs.stats.warm_promotions;
      }
      slot.cached.reset();
      slot.dirty = true;
      slot.repairs_since_build = 0;
      ++gs.stats.root_migrations;
      if (s == 0) {
        gs.root = slot.root;  // root_of stays "the authority's root"
        gs.replica = kInvalidPeer;
        gs.replica_members.clear();
        gs.replica_count = 0;
      }
      outcome.promotions.push_back({group, old_root, slot.root, warm, consistent, s});
      if (tracer_.enabled())
        tracer_.emit({clock_now(), obs::TraceEventType::kRootMigration, group,
                      obs::kNoWave, 0, 0, slot.root, peer});
      continue;
    }
    if (!slot.cached || slot.dirty) continue;
    if (!slot.cached->tree.reached(peer)) {
      const bool stranded_member = slot.cached->is_subscriber[peer];
      bool neighbours_tree = false;
      for (PeerId q : graph_.neighbors(peer))
        if (slot.cached->tree.reached(q)) {
          neighbours_tree = true;
          break;
        }
      if (stranded_member || neighbours_tree) {
        GroupTree& gt = neighbours_tree ? writable_tree_stale(slot.cached)
                                        : writable_tree(slot.cached);
        if (stranded_member) {
          gt.is_subscriber[peer] = false;
          --gt.subscriber_count;
        }
        if (neighbours_tree) gt.zones_stale = true;
      }
      continue;
    }
    const auto repair =
        repair_group_tree(graph_, writable_tree_stale(slot.cached), peer, alive_);
    ++gs.stats.repairs;
    gs.stats.repair_messages += repair.messages;
    if (repair.needs_rebuild) {
      ++gs.stats.repair_failures;
      slot.dirty = true;
    } else {
      ++slot.repairs_since_build;
    }
  }
}

const GroupStats& GroupManager::stats(GroupId group) const {
  static const GroupStats kEmpty{};
  const auto it = groups_.find(group);
  return it == groups_.end() ? kEmpty : it->second.stats;
}

GroupStats GroupManager::total_stats() const {
  GroupStats total;
  for (const auto& [group, gs] : groups_) total += gs.stats;
  return total;
}

std::vector<GroupId> GroupManager::known_groups() const {
  std::vector<GroupId> ids;
  ids.reserve(groups_.size());
  for (const auto& [group, gs] : groups_) ids.push_back(group);
  return ids;
}

void GroupManager::configure_lanes(std::size_t lanes, LaneFn lane_fn) {
  lane_stats_.clear();
  lane_stats_.resize(lanes);
  lane_retained_peak_.assign(lanes, 0);
  lane_fn_ = lane_fn;
}

void GroupManager::collapse_lane_stats() {
  for (auto& per_lane : lane_stats_) {
    for (auto& [group, delta] : per_lane) state_of(group).stats += delta;
    per_lane.clear();
  }
  for (std::size_t& peak : lane_retained_peak_) {
    retained_peak_ = std::max(retained_peak_, peak);
    peak = 0;
  }
}

}  // namespace geomcast::groups
