// Group membership and tree-cache management for the pub/sub subsystem.
//
// Conceptually this state lives at each group's rendezvous root (the peer
// whose identifier is nearest the group id's hash point); the class
// aggregates all roots' state behind one façade, the same way the
// synchronous builders consult the global OverlayGraph while making only
// local decisions. The message-driven pipeline (groups/pubsub.hpp) drives
// it from real envelopes delivered to the roots.
//
// Tree caching: a group's tree is built lazily on first publish and shared
// across publishes. Membership changes update the cached tree
// incrementally (graft/prune); departures mend it in place via the
// stability-layer repair rule. A full rebuild happens only when (a) repair
// gives up or stale zones block a graft, (b) the accumulated incremental
// changes exceed `rebuild_threshold` times the subscriber count, or (c)
// the rendezvous root itself departs and the group migrates.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "groups/group_stats.hpp"
#include "groups/group_tree.hpp"
#include "overlay/graph.hpp"

namespace geomcast::groups {

struct GroupConfig {
  /// Delegate-selection rule for group trees (deterministic policies only;
  /// kRandom is rejected by the tree layer).
  multicast::MulticastConfig tree;
  /// Full rebuild once in-place repairs since the last build exceed this
  /// fraction of the subscriber count. Grafts and prunes are exact (the
  /// tree stays equal to a fresh build) and never count; only repairs
  /// deviate and accumulate drift.
  double rebuild_threshold = 0.5;
  /// Stream tag for hashing group ids to rendezvous points.
  std::uint64_t rendezvous_seed = 0x67656f6d63617374ULL;
};

class GroupManager {
 public:
  explicit GroupManager(const overlay::OverlayGraph& graph, GroupConfig config = {});

  /// The group's rendezvous root: the alive peer nearest (L1) the group
  /// id's hash point in the coordinate space. Cached; recomputed (and the
  /// group's tree invalidated) when the incumbent departs.
  [[nodiscard]] PeerId root_of(GroupId group);

  void subscribe(GroupId group, PeerId peer);
  void unsubscribe(GroupId group, PeerId peer);
  [[nodiscard]] bool is_subscribed(GroupId group, PeerId peer) const;
  [[nodiscard]] std::size_t subscriber_count(GroupId group) const;

  /// The group's dissemination tree — built lazily, cached across
  /// publishes, incrementally maintained. Returns nullptr for a group with
  /// no subscribers (nothing to span).
  [[nodiscard]] const GroupTree* tree(GroupId group);

  /// Same resolution, returned as a shared snapshot for an in-flight
  /// publish wave. Copy-on-write: membership/repair mutations clone the
  /// tree only while snapshots are outstanding, so unchanged-tree
  /// publishes all share one copy.
  [[nodiscard]] std::shared_ptr<const GroupTree> tree_snapshot(GroupId group);

  /// Synchronous (lossless) publish accounting: resolves the tree and
  /// books one payload message per edge and one delivery per spanned
  /// subscriber. The message-driven pipeline books these itself instead.
  struct PublishReceipt {
    std::uint64_t payload_messages = 0;
    std::size_t delivered = 0;
  };
  PublishReceipt publish(GroupId group);

  /// Marks `peer` departed everywhere: membership, cached trees (repaired
  /// in place where possible), and rendezvous roots (migrated).
  void handle_departure(PeerId peer);
  [[nodiscard]] bool alive(PeerId peer) const { return alive_[peer]; }

  /// Mutable access materializes state for a first-seen group (the
  /// protocol layer writes counters through it); the const overload is a
  /// pure lookup that leaves unknown groups unknown.
  [[nodiscard]] GroupStats& stats(GroupId group);
  [[nodiscard]] const GroupStats& stats(GroupId group) const;
  [[nodiscard]] GroupStats total_stats() const;
  [[nodiscard]] std::vector<GroupId> known_groups() const;

 private:
  struct GroupState {
    std::vector<bool> subscribers;
    std::size_t count = 0;
    PeerId root = kInvalidPeer;
    std::shared_ptr<GroupTree> cached;
    bool dirty = true;  // cached tree (if any) no longer trusted
    std::size_t repairs_since_build = 0;
    GroupStats stats;
  };

  GroupState& state_of(GroupId group);
  [[nodiscard]] PeerId rendezvous_root(GroupId group) const;
  void refresh_tree(GroupState& gs);
  /// COW gate: clones the cached tree iff publish-wave snapshots still
  /// reference it, then returns it for mutation.
  [[nodiscard]] GroupTree& writable_tree(GroupState& gs);

  const overlay::OverlayGraph& graph_;
  GroupConfig config_;
  std::vector<bool> alive_;
  std::vector<double> bounds_lo_, bounds_hi_;  // peer bounding box (immutable)
  std::map<GroupId, GroupState> groups_;
};

}  // namespace geomcast::groups
