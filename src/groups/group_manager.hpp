// Group membership and tree-cache management for the pub/sub subsystem.
//
// Conceptually this state lives at each group's rendezvous root (the peer
// whose identifier is nearest the group id's hash point); the class
// aggregates all roots' state behind one façade, the same way the
// synchronous builders consult the global OverlayGraph while making only
// local decisions. The message-driven pipeline (groups/pubsub.hpp) drives
// it from real envelopes delivered to the roots.
//
// Tree caching: a group's tree is built lazily on first publish and shared
// across publishes. Membership changes update the cached tree
// incrementally (graft/prune); departures mend it in place via the
// stability-layer repair rule. A full rebuild happens only when (a) repair
// gives up or stale zones block a graft, (b) the accumulated incremental
// changes exceed `rebuild_threshold` times the subscriber count, or (c)
// the rendezvous root itself departs and the group migrates.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "groups/group_stats.hpp"
#include "groups/group_tree.hpp"
#include "obs/trace.hpp"
#include "overlay/graph.hpp"

namespace geomcast::groups {

/// Bounded per-(peer, group) payload retention backing QoS 2 gap repair:
/// the root and every forwarder keep the last `capacity` waves they pushed
/// down the tree so a subscriber's NACK can be answered from the nearest
/// in-tree ancestor instead of the publisher. Eviction is oldest-seq-first,
/// so memory per buffer is hard-bounded by the configured retention window
/// (each entry also pins its wave's tree snapshot, which is shared across
/// the window's entries in the common unchanged-tree case).
class RetainedBuffer {
 public:
  explicit RetainedBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Retains `payload` for the dense seq range [lo, hi] (one entry — a
  /// batched wave retains once, not per seq); evicts the lowest retained
  /// ranges while the buffer covers more than `capacity` seqs. Returns the
  /// number of seqs evicted (a zero-capacity buffer evicts the new entry
  /// itself). Re-retaining a held range (same lo) overwrites in place;
  /// ranges of one group never partially overlap — the root assigns them.
  std::size_t retain(std::uint64_t lo, std::uint64_t hi, std::any payload);
  /// Single-seq convenience (the unbatched pipeline).
  std::size_t retain(std::uint64_t seq, std::any payload) {
    return retain(seq, seq, std::move(payload));
  }

  /// The retained payload whose range covers `seq`, or nullptr when absent
  /// (never held, or already evicted — the caller escalates to an older
  /// ancestor).
  [[nodiscard]] const std::any* find(std::uint64_t seq) const;

  /// Seqs covered across all retained ranges — the unit the capacity
  /// bound is expressed in (a range wave costs its width, so batching
  /// cannot inflate the retention memory bound).
  [[nodiscard]] std::size_t size() const noexcept { return covered_; }
  /// The retained [lo, hi] ranges, lowest first — the warm-failover
  /// bootstrap enumerates these to re-stream a root's history.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges() const;
  /// Retained range entries (<= size(); one per wave).
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::uint64_t seq_hi;
    std::any payload;
  };

  std::size_t capacity_;
  std::size_t covered_ = 0;
  std::map<std::uint64_t, Entry> entries_;  // keyed by the range's seq_lo
};

struct GroupConfig {
  /// Delegate-selection rule for group trees (deterministic policies only;
  /// kRandom is rejected by the tree layer).
  multicast::MulticastConfig tree;
  /// Full rebuild once in-place repairs since the last build exceed this
  /// fraction of the subscriber count. Grafts and prunes are exact (the
  /// tree stays equal to a fresh build) and never count; only repairs
  /// deviate and accumulate drift.
  double rebuild_threshold = 0.5;
  /// Waves each QoS 2 repair responder (root / forwarder) retains per
  /// group; 0 disables retention entirely (every NACK misses).
  std::size_t retention_window = 64;
  /// Stream tag for hashing group ids to rendezvous points.
  std::uint64_t rendezvous_seed = 0x67656f6d63617374ULL;
  /// Replica-sharded roots: rendezvous-hash each group to this many anchor
  /// points in coordinate space and partition the root's state across the
  /// nearest alive peer to each anchor. 1 (the default) is the historic
  /// single-root pipeline — the bit-identical oracle; slot 0's anchor is
  /// exactly the legacy rendezvous point, so root_of() never changes
  /// meaning. Subscribers are owned by the slot whose ANCHOR is nearest
  /// their coordinate (anchors are immutable, so churn moves slot roots
  /// but never reshuffles the shard partition).
  std::size_t root_replicas = 1;
};

class GroupManager {
 public:
  explicit GroupManager(const overlay::OverlayGraph& graph, GroupConfig config = {});

  /// The group's rendezvous root: the alive peer nearest (L1) the group
  /// id's hash point in the coordinate space. Cached; recomputed (and the
  /// group's tree invalidated) when the incumbent departs.
  [[nodiscard]] PeerId root_of(GroupId group);

  /// Synchronous subscribe: records membership AND grafts the subscriber
  /// into the cached tree in place (the local-descent oracle the routed
  /// control plane is verified against).
  void subscribe(GroupId group, PeerId peer);
  void unsubscribe(GroupId group, PeerId peer);
  [[nodiscard]] bool is_subscribed(GroupId group, PeerId peer) const;
  [[nodiscard]] std::size_t subscriber_count(GroupId group) const;

  // -- routed graft (the distributed zone descent) -------------------------
  // The message-driven subscribe path splits the oracle's subscribe() in
  // two: membership is recorded immediately at the root, while the tree
  // splice becomes an in-flight graft — a GraftCursor advanced one descent
  // decision per routed envelope. The table below holds every in-flight
  // cursor; races with publish (COW snapshots), departures (validation per
  // step), and rebuilds (abort + dirty) are resolved here.

  /// What the routed subscribe must do beyond recording membership.
  enum class SubscribeNeed {
    kNone,   ///< lazy build / existing span covers the subscriber
    kGraft,  ///< clean cached tree exists and the subscriber is not spanned
  };
  /// Records membership only (idempotent; a duplicate changes nothing) and
  /// reports whether a routed graft is owed. Mirrors subscribe()'s cache
  /// handling: when no graftable tree exists, a fresh member dirties the
  /// cache so the next publish's rebuild spans it.
  SubscribeNeed subscribe_membership(GroupId group, PeerId peer);

  /// Registers an in-flight graft of `subscriber` into `group`'s cached
  /// tree, initiated by `root`. Returns the graft id (the control plane's
  /// reliability token), or 0 when no graft can start: tree not graftable,
  /// subscriber dead/not a member, or a graft for this (group, subscriber)
  /// already in flight.
  [[nodiscard]] std::uint64_t graft_begin(GroupId group, PeerId subscriber, PeerId root);

  struct GraftAdvance {
    enum class Status {
      kDescend,   ///< decision taken; route the request to `next`
      kAttached,  ///< subscriber spliced in; report accept to the root
      kFailed,    ///< cursor invalid (stranded/raced/aborted); report reject
    };
    Status status = Status::kFailed;
    PeerId next = kInvalidPeer;
  };
  /// Takes one descent decision of graft `graft_id` at `self` (which must
  /// be the cursor's current peer). Validates the cursor against the live
  /// group state first: a rebuild, repair, migration, membership change,
  /// or participant death since the previous step fails the graft instead
  /// of corrupting the tree.
  [[nodiscard]] GraftAdvance graft_advance(std::uint64_t graft_id, PeerId self);

  /// Retires a completed graft (the root received the accept): books the
  /// graft in the group's stats. False when the entry is gone (aborted
  /// meanwhile, or a duplicate accept) — idempotent by design.
  bool graft_finish(std::uint64_t graft_id);

  struct AbortedGraft {
    GroupId group = 0;
    PeerId subscriber = kInvalidPeer;
  };
  /// Gives up on an in-flight graft: drops the cursor and dirties the
  /// group's cache so the next publish rebuilds with the subscriber's
  /// membership (the half-grafted relay path is discarded with it). The
  /// caller re-issues the subscribe for alive subscribers. nullopt when
  /// the entry is already gone — idempotent like graft_finish.
  std::optional<AbortedGraft> graft_abort(std::uint64_t graft_id);

  /// In-flight graft cursors currently held (0 once a simulation drains —
  /// the "no leaked cursor state" invariant the churn battery pins).
  [[nodiscard]] std::size_t inflight_graft_count() const noexcept {
    return grafts_.size();
  }

  /// The group's dissemination tree — built lazily, cached across
  /// publishes, incrementally maintained. Returns nullptr for a group with
  /// no subscribers (nothing to span).
  [[nodiscard]] const GroupTree* tree(GroupId group);

  /// Same resolution, returned as a shared snapshot for an in-flight
  /// publish wave. Copy-on-write: membership/repair mutations clone the
  /// tree only while snapshots are outstanding, so unchanged-tree
  /// publishes all share one copy.
  [[nodiscard]] std::shared_ptr<const GroupTree> tree_snapshot(GroupId group);

  /// Pure lookup of the cached tree: no lazy build, no cache-hit
  /// accounting, nullptr when nothing is cached (or the cache is dirty).
  /// Observation-only — lets benches/tests inspect the tree a wave in
  /// flight is using without perturbing the stats they are measuring.
  [[nodiscard]] const GroupTree* cached_tree(GroupId group) const;

  // -- replica-sharded roots (GroupConfig::root_replicas > 1) --------------
  // Each group hashes to R immutable anchor points (slot 0's anchor is the
  // legacy rendezvous point); every slot's root is the alive peer nearest
  // that slot's anchor, excluding the other slots' roots. Subscribers are
  // owned by the slot whose anchor is nearest their coordinate, so the
  // partition is a pure function of geometry and never reshuffles under
  // churn — a slot-root death promotes the next-nearest peer to the SAME
  // anchor, which inherits the whole shard (membership bits, graft
  // cursors, tree) by construction. At R == 1 these collapse to the legacy
  // accessors and the slot machinery stays entirely dormant.

  /// Whether the replica-sharded pipeline is active (root_replicas > 1).
  [[nodiscard]] bool sharded() const noexcept { return config_.root_replicas > 1; }
  [[nodiscard]] std::size_t root_replicas() const noexcept {
    return config_.root_replicas > 1 ? config_.root_replicas : 1;
  }
  /// The slot owning `peer` for this group: argmin over anchors of the L1
  /// distance from the peer's coordinate (ties to the lowest slot). Always
  /// 0 when not sharded.
  [[nodiscard]] std::uint32_t owner_slot(GroupId group, PeerId peer);
  /// The current root of `slot` (== root_of at slot 0 / when not sharded).
  [[nodiscard]] PeerId slot_root(GroupId group, std::uint32_t slot);
  /// slot_root(group, owner_slot(group, peer)) — where this peer's
  /// control traffic (subscribe / unsubscribe / publish) must land.
  [[nodiscard]] PeerId owner_root(GroupId group, PeerId peer);
  /// The slot's shard tree (rooted at the slot root, spanning only the
  /// slot's members), built lazily like tree_snapshot. nullptr when the
  /// shard is empty. Falls back to the whole-group snapshot at R == 1.
  [[nodiscard]] std::shared_ptr<const GroupTree> slot_tree_snapshot(GroupId group,
                                                                    std::uint32_t slot);
  /// Members owned by `slot` (the group's subscriber_count at R == 1).
  [[nodiscard]] std::size_t slot_member_count(GroupId group, std::uint32_t slot);

  // -- QoS 2 payload retention -------------------------------------------
  // Retained buffers are per-peer protocol state, not root state: they
  // survive tree rebuilds and root migrations untouched (payload history
  // is independent of tree shape), a migrated-to root simply starts
  // retaining from its first forwarded wave, and a departed peer's buffers
  // are dropped with it — the dead cannot serve repairs, which is exactly
  // why NACKs escalate ancestor-by-ancestor.

  /// Retains a wave payload covering seqs [lo, hi] at `peer` for later
  /// repair service; bounded by GroupConfig::retention_window (counted in
  /// seqs, so batched range waves cannot inflate the memory bound).
  /// Returns seqs evicted so the caller can attribute them to the group's
  /// stats.
  std::size_t retain_payload(PeerId peer, GroupId group, std::uint64_t lo,
                             std::uint64_t hi, std::any payload);
  /// The payload `peer` retained for (group, seq), or nullptr.
  [[nodiscard]] const std::any* retained_payload(PeerId peer, GroupId group,
                                                 std::uint64_t seq) const;
  /// Highest occupancy any single retained buffer ever reached — the
  /// "memory bounded by the retention window" acceptance gate reads this.
  [[nodiscard]] std::size_t retained_peak() const noexcept { return retained_peak_; }
  /// Entries currently retained across all peers and groups.
  [[nodiscard]] std::size_t retained_entry_total() const noexcept;
  /// Live (peer, group) retained buffers. Together with
  /// retained_entry_total() this expresses the memory bound the bench
  /// gates on: entries <= buffers x retention_window — O(1) per
  /// responder-group pair, never O(waves published).
  [[nodiscard]] std::size_t retained_buffer_count() const noexcept;

  /// Synchronous (lossless) publish accounting: resolves the tree and
  /// books one payload message per edge and one delivery per spanned
  /// subscriber. The message-driven pipeline books these itself instead.
  struct PublishReceipt {
    std::uint64_t payload_messages = 0;
    std::size_t delivered = 0;
  };
  PublishReceipt publish(GroupId group);

  // -- warm root failover (PubSubConfig::warm_failover drives this) --------
  // The replica is the group's deterministic successor: the next-nearest
  // alive peer to the rendezvous point after the root. Because departures
  // only shrink the alive set, the recomputed rendezvous root after a root
  // death IS the established replica — promotion needs no election. The
  // manager keeps the replica's bookkeeping copy (membership bits) inside
  // the same façade; the protocol layer drives it purely through real
  // kReplicaSyncKind envelopes, so the copy is exactly as fresh as the
  // sync stream, never an oracle shortcut.

  /// The peer that WOULD be the group's replica right now (pure compute,
  /// no state change): next-nearest alive peer to the rendezvous point
  /// excluding the current root; kInvalidPeer when no second peer exists.
  [[nodiscard]] PeerId replica_candidate(GroupId group);
  /// The established replica, (re)assigning it when unset or dead. A fresh
  /// assignment starts with an empty bookkeeping copy — the caller owes it
  /// a full bootstrap stream.
  PeerId ensure_replica(GroupId group);
  /// The established replica without assignment; kInvalidPeer when none.
  [[nodiscard]] PeerId replica_of(GroupId group) const;
  /// Applies one membership delta to the replica's copy (idempotent).
  void replica_apply_membership(GroupId group, PeerId member, bool subscribed);
  [[nodiscard]] std::size_t replica_member_count(GroupId group) const;

  /// Alive subscribers of the group, ascending — the bootstrap stream and
  /// the promotion consistency check enumerate these.
  [[nodiscard]] std::vector<PeerId> subscribers_of(GroupId group) const;
  /// The [lo, hi] ranges `peer` retains for `group`, lowest first.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> retained_ranges(
      PeerId peer, GroupId group) const;

  /// One root migration, as seen by handle_departure: `warm` when the
  /// successor was the group's established replica (it inherits the
  /// synced subscriber set and its RetainedBuffer);
  /// `membership_consistent` (warm only) when the replica's synced copy
  /// matched the root's authoritative set at the instant of promotion.
  struct RootPromotion {
    GroupId group = 0;
    PeerId old_root = kInvalidPeer;
    PeerId new_root = kInvalidPeer;
    bool warm = false;
    bool membership_consistent = false;
    /// Which replica slot migrated (always 0 when not sharded). Only the
    /// slot-0 (authority) promotion participates in the warm-failover
    /// protocol; other slots hand their shard to the promoted successor
    /// through the anchor-ownership rule alone.
    std::uint32_t slot = 0;
  };
  struct ReplicaLoss {
    GroupId group = 0;
    PeerId old_replica = kInvalidPeer;
  };
  /// Everything one departure obliges the protocol layer to do.
  struct DepartureOutcome {
    std::vector<AbortedGraft> aborted_grafts;  ///< re-issue these subscribes
    std::vector<RootPromotion> promotions;     ///< roots that migrated
    std::vector<ReplicaLoss> replica_losses;   ///< replicas owed a re-bootstrap
    std::vector<GroupId> member_losses;  ///< groups that lost `peer` (root alive)
  };

  /// Marks `peer` departed everywhere: membership, cached trees (repaired
  /// in place where possible), rendezvous roots (migrated, with warm
  /// promotion when the successor was the established replica), replica
  /// assignments, and in-flight grafts whose descent the departure
  /// invalidated — aborted grafts are returned so the protocol layer can
  /// re-issue the subscribes.
  DepartureOutcome handle_departure(PeerId peer);
  [[nodiscard]] bool alive(PeerId peer) const { return alive_[peer]; }

  // -- observability -------------------------------------------------------
  /// Clock for latency accounting (graft begin -> attach lands in
  /// GroupStats::graft_latency). The message-driven pipeline always wires
  /// the simulator's now(), tracing or not, so stats stay identical either
  /// way; without a clock (synchronous oracle usage) no latency samples.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }
  /// Attaches (nullptr: detaches) a trace sink for tree-maintenance and
  /// graft-lifecycle events. Purely passive; requires a clock for
  /// meaningful timestamps.
  void set_trace_sink(obs::TraceSink* sink) noexcept { tracer_.attach(sink); }

  /// Mutable access materializes state for a first-seen group (the
  /// protocol layer writes counters through it); the const overload is a
  /// pure lookup that leaves unknown groups unknown.
  [[nodiscard]] GroupStats& stats(GroupId group);
  [[nodiscard]] const GroupStats& stats(GroupId group) const;
  [[nodiscard]] GroupStats total_stats() const;
  [[nodiscard]] std::vector<GroupId> known_groups() const;

  // -- sharded event loop --------------------------------------------------
  /// Redirects stats(GroupId) writes from worker-lane contexts (lane_fn()
  /// >= 0) into per-lane delta maps instead of the shared GroupState, so
  /// concurrent workers never touch groups_ / the state memo. Deltas are
  /// integer counters plus histogram samples; collapse_lane_stats() folds
  /// them into the authoritative stats with operator+= (bit-exact: pure
  /// integer adds, and Histogram::merge of an empty delta is a no-op) and
  /// must only run while workers are parked (the window barrier).
  using LaneFn = int (*)() noexcept;
  void configure_lanes(std::size_t lanes, LaneFn lane_fn);
  void collapse_lane_stats();

 private:
  /// One replica slot of a sharded group: its own root, member shard, and
  /// cached shard tree — the same (root, members, cached, dirty, drift)
  /// tuple the legacy GroupState keeps for the whole group.
  struct ShardSlot {
    PeerId root = kInvalidPeer;
    std::vector<bool> members;
    std::size_t count = 0;
    std::shared_ptr<GroupTree> cached;
    bool dirty = true;
    std::size_t repairs_since_build = 0;
  };

  struct GroupState {
    std::vector<bool> subscribers;
    std::size_t count = 0;
    PeerId root = kInvalidPeer;
    std::shared_ptr<GroupTree> cached;
    bool dirty = true;  // cached tree (if any) no longer trusted
    std::size_t repairs_since_build = 0;
    // Warm failover: the established replica and its sync-driven copy of
    // the subscriber set (empty vector until the first delta lands).
    PeerId replica = kInvalidPeer;
    std::vector<bool> replica_members;
    std::size_t replica_count = 0;
    // Replica sharding (root_replicas > 1 only; both stay empty otherwise).
    // slots[0].root mirrors `root` so root_of keeps meaning "the authority".
    std::vector<ShardSlot> slots;
    std::vector<geometry::Point> anchors;  // immutable slot hash points
    GroupStats stats;
  };

  /// Inline memo hit (protocol code resolves the same group many times per
  /// wave); the miss path materializes/looks up out of line.
  GroupState& state_of(GroupId group) {
    if (state_cache_ != nullptr && state_cache_group_ == group) return *state_cache_;
    return state_of_slow(group);
  }
  GroupState& state_of_slow(GroupId group);
  [[nodiscard]] PeerId rendezvous_root(GroupId group) const;
  /// Shared rendezvous scan: nearest alive peer to the group's hash point,
  /// skipping `exclude`; kInvalidPeer when no candidate remains.
  [[nodiscard]] PeerId rendezvous_nearest(GroupId group, PeerId exclude) const;
  /// The deterministic hash point for (group, slot); slot 0 reproduces the
  /// legacy rendezvous point bit-for-bit.
  [[nodiscard]] geometry::Point hash_point(GroupId group, std::uint32_t slot) const;
  /// Nearest alive peer to `target` skipping the `exclude_count` peers at
  /// `exclude`; kInvalidPeer when no candidate remains.
  [[nodiscard]] PeerId nearest_to(const geometry::Point& target, const PeerId* exclude,
                                  std::size_t exclude_count) const;
  /// Materializes the slot array + anchors for a first-seen sharded group.
  void init_slots(GroupId group, GroupState& gs);
  [[nodiscard]] std::uint32_t owner_slot_of(const GroupState& gs, PeerId peer) const;
  /// Re-elects `slot`'s root: nearest alive peer to its anchor excluding
  /// the other slots' current roots (falling back to no exclusions when
  /// the alive set is smaller than R).
  [[nodiscard]] PeerId recompute_slot_root(const GroupState& gs, std::uint32_t slot) const;
  void refresh_tree(GroupId group, GroupState& gs);
  void refresh_slot_tree(GroupId group, GroupState& gs, std::uint32_t slot);
  /// The shared lazy-build core behind refresh_tree / refresh_slot_tree:
  /// identical statements over whichever (root, members, cached, dirty,
  /// drift) tuple the caller binds, so the R == 1 path stays bit-exact.
  void refresh_tree_core(GroupId group, GroupStats& stats, PeerId root,
                         const std::vector<bool>& members, std::size_t count,
                         std::shared_ptr<GroupTree>& cached, bool& dirty,
                         std::size_t& repairs_since_build);
  /// COW gate: clones the cached tree iff publish-wave snapshots still
  /// reference it, then returns it for mutation.
  [[nodiscard]] GroupTree& writable_tree(std::shared_ptr<GroupTree>& cached);
  /// COW gate for callers about to stale the zones (departure repair,
  /// neighbour-set shrink): the clone skips the zones vector — the tree's
  /// largest member — because no reader may consult zones once zones_stale
  /// is set, and nothing resets the flag short of a full rebuild.
  [[nodiscard]] GroupTree& writable_tree_stale(std::shared_ptr<GroupTree>& cached);

  struct InFlightGraft {
    GroupId group = 0;
    PeerId subscriber = kInvalidPeer;
    PeerId root = kInvalidPeer;  // initiating root (invalidates on migration)
    std::uint32_t slot = 0;      // owning shard (0 when not sharded)
    GraftCursor cursor;
    double started_at = 0.0;  // clock_ at graft_begin (graft_latency sample)
  };

  /// Uniform view over "the tree-owning tuple" — the legacy whole-group
  /// fields at R == 1 (or slot-less groups), a ShardSlot's otherwise.
  /// Validation/mutation code written against this executes the exact
  /// legacy statements when bound to the legacy fields.
  struct SlotView {
    PeerId root;
    std::shared_ptr<GroupTree>* cached;
    bool* dirty;
  };
  [[nodiscard]] SlotView view_of(GroupState& gs, std::uint32_t slot) {
    if (gs.slots.empty()) return {gs.root, &gs.cached, &gs.dirty};
    ShardSlot& s = gs.slots[slot];
    return {s.root, &s.cached, &s.dirty};
  }
  void handle_departure_sharded_group(GroupId group, GroupState& gs, PeerId peer,
                                      DepartureOutcome& outcome);

  const overlay::OverlayGraph& graph_;
  GroupConfig config_;
  std::vector<bool> alive_;
  std::vector<double> bounds_lo_, bounds_hi_;  // peer bounding box (immutable)
  std::map<GroupId, GroupState> groups_;
  /// One-entry memo over groups_: protocol traffic touches the same group
  /// many times in a row (every hop of a wave), and groups_ nodes are never
  /// erased, so the cached pointer stays valid for the manager's lifetime.
  GroupId state_cache_group_ = 0;
  GroupState* state_cache_ = nullptr;
  /// In-flight routed grafts by id, plus the (group, subscriber) guard
  /// that keeps duplicate subscribes from racing two descents for one
  /// subscriber.
  std::map<std::uint64_t, InFlightGraft> grafts_;
  std::set<std::pair<GroupId, PeerId>> grafting_;
  std::uint64_t next_graft_id_ = 1;
  /// QoS 2 retention, indexed peer-first so a departure drops the whole
  /// peer's history in one clear. A flat vector (one slot per peer, sized
  /// at construction) rather than a map: retention writes are peer-affine,
  /// so under the sharded loop each worker touches only its own region's
  /// slots — no shared container node to race on.
  std::vector<std::map<GroupId, RetainedBuffer>> retained_;
  std::size_t retained_peak_ = 0;
  /// Sharded-loop stat routing (see configure_lanes): per-lane GroupStats
  /// deltas and per-lane retained-occupancy peaks, folded into the shared
  /// state at each window barrier.
  LaneFn lane_fn_ = nullptr;
  std::vector<std::map<GroupId, GroupStats>> lane_stats_;
  std::vector<std::size_t> lane_retained_peak_;
  /// Observability (see set_clock/set_trace_sink): both optional, both
  /// passive — no protocol decision reads them.
  std::function<double()> clock_;
  obs::Tracer tracer_;

  [[nodiscard]] double clock_now() const { return clock_ ? clock_() : 0.0; }
};

inline GroupStats& GroupManager::stats(GroupId group) {
  if (lane_fn_ != nullptr) {
    const int lane = lane_fn_();
    if (lane >= 0) return lane_stats_[static_cast<std::size_t>(lane)][group];
  }
  return state_of(group).stats;
}

}  // namespace geomcast::groups
