#include "groups/failure_injection.hpp"

#include <algorithm>
#include <utility>

namespace geomcast::groups {

void schedule_midwave_kill(
    PubSubSystem& system, GroupId group, double wave_time,
    const std::vector<bool>& member_anywhere,
    std::function<void(PeerId relay, std::size_t severed_subscribers)> on_kill,
    double wave_start_delay) {
  system.simulator().schedule_at(
      wave_time + 0.001,
      [&system, group, wave_time, wave_start_delay, &member_anywhere,
       on_kill = std::move(on_kill)]() {
        const GroupTree* gt = system.manager().cached_tree(group);
        if (gt == nullptr) return;
        const auto depths = gt->tree.depths();
        PeerId best = kInvalidPeer;
        std::size_t best_subs = 0;
        for (PeerId p = 0; p < member_anywhere.size(); ++p) {
          if (!gt->tree.reached(p) || p == gt->tree.root()) continue;
          if (member_anywhere[p] || !system.manager().alive(p)) continue;
          if (gt->tree.children(p).empty()) continue;
          std::size_t subs = 0;  // subscriber descendants via DFS
          std::vector<PeerId> stack{p};
          while (!stack.empty()) {
            const PeerId q = stack.back();
            stack.pop_back();
            if (gt->is_subscriber[q]) ++subs;
            for (const PeerId c : gt->tree.children(q)) stack.push_back(c);
          }
          if (subs > best_subs) {
            best = p;
            best_subs = subs;
          }
        }
        if (best == kInvalidPeer) return;
        if (on_kill) on_kill(best, best_subs);
        // Depart just before the wave's constant-latency arrival at the
        // relay's tree depth, clamped to "now" for depth-1 relays. The
        // wave leaves the root at wave_time + wave_start_delay (the batch
        // window when coalescing buffers the root's own publish).
        const double arrival = wave_time + wave_start_delay +
                               0.01 * static_cast<double>(depths[best]);
        system.simulator().schedule_at(
            std::max(arrival - 0.005, system.simulator().now()),
            [&system, best]() { system.depart_now(best); });
      });
}

void schedule_root_kill(
    PubSubSystem& system, GroupId group, double wave_time,
    const std::vector<bool>& member_anywhere,
    std::function<void(PeerId root, PeerId relay, std::size_t severed_subscribers)>
        on_kill,
    double wave_start_delay, double root_kill_delay) {
  system.simulator().schedule_at(
      wave_time + 0.001,
      [&system, group, wave_time, wave_start_delay, root_kill_delay,
       &member_anywhere, on_kill = std::move(on_kill)]() {
        const GroupTree* gt = system.manager().cached_tree(group);
        if (gt == nullptr) return;
        const PeerId root = gt->tree.root();
        // replica_candidate is a pure rendezvous computation, independent
        // of whether warm_failover is on — excluding it keeps victim
        // selection identical across the cold and warm cells AND keeps the
        // successor alive to promote.
        const PeerId replica = system.manager().replica_candidate(group);
        PeerId best = kInvalidPeer;
        std::size_t best_subs = 0;
        for (const PeerId p : gt->tree.children(root)) {
          if (!system.manager().alive(p) || p == replica) continue;
          if (p < member_anywhere.size() && member_anywhere[p]) continue;
          if (gt->tree.children(p).empty()) continue;
          std::size_t subs = 0;  // subscriber descendants via DFS
          std::vector<PeerId> stack{p};
          while (!stack.empty()) {
            const PeerId q = stack.back();
            stack.pop_back();
            if (gt->is_subscriber[q]) ++subs;
            for (const PeerId c : gt->tree.children(q)) stack.push_back(c);
          }
          if (subs > best_subs) {
            best = p;
            best_subs = subs;
          }
        }
        if (best == kInvalidPeer) return;
        if (on_kill) on_kill(root, best, best_subs);
        // The relay is a direct child: the wave reaches it one constant
        // latency after leaving the root.
        const double start = wave_time + wave_start_delay;
        system.simulator().schedule_at(
            std::max(start + 0.01 - 0.005, system.simulator().now()),
            [&system, best]() { system.depart_now(best); });
        system.simulator().schedule_at(
            std::max(start + root_kill_delay, system.simulator().now()),
            [&system, root]() { system.depart_now(root); });
      });
}

}  // namespace geomcast::groups
