// Per-group embedded multicast trees: the paper's §2 space-partitioning
// recursion restricted to a subscriber set.
//
// A group's tree spans its subscribers plus the relay peers the recursion
// must route through (same delivery/relay split as range_multicast, with a
// point set instead of a target rectangle as the pruning oracle). Pruning
// happens after delegate selection, so every surviving child zone is
// identical to the whole-space run and the §2 correctness argument — every
// subscriber in Z(P) lies in exactly one child slice — carries over.
//
// Because builds are deterministic (kRandom is rejected), membership
// changes can be applied incrementally and still land exactly on the tree
// a fresh build would produce:
//  * graft: descend from the root along the slices containing the new
//    subscriber, adding the missing suffix of the path — a fresh build
//    with the enlarged set runs the same partition steps, so old edges are
//    untouched and the grafted path is exactly the fresh build's new path;
//  * prune: flip the delivery bit and cascade relay-only leaves away —
//    precisely the branches whose slices lose their last subscriber.
// Churn repair (departure of an in-tree peer) reattaches orphan subtrees
// via stability::repair_orphans and therefore CAN deviate from a fresh
// build; it marks the zones stale, which blocks further zone-guided grafts
// until the GroupManager rebuilds.
//
// General-position caveat (inherited from the paper's open-zone recursion):
// a subscriber whose identifier ties a delegating peer's coordinate lies on
// a zone boundary and cannot be reached by any slice. Such subscribers stay
// unreached (reached_subscribers < subscriber_count); GroupStats surfaces
// them as stranded_subscribers rather than hiding them in the delivery
// ratio. Random real-valued identifiers hit this with probability zero.
#pragma once

#include <cstdint>
#include <vector>

#include "multicast/space_partition.hpp"
#include "overlay/graph.hpp"

namespace geomcast::groups {

using overlay::PeerId;
using overlay::kInvalidPeer;

struct GroupTree {
  multicast::MulticastTree tree;      // spans subscribers and relays
  std::vector<geometry::Rect> zones;  // responsibility zone per reached peer
  std::vector<bool> is_subscriber;    // delivery flag per peer
  std::size_t subscriber_count = 0;   // peers with the delivery flag set
  /// Subscribers the tree actually spans (== subscriber_count unless a
  /// build stranded); maintained incrementally by graft/prune/repair.
  std::size_t reached_subscribers = 0;
  std::uint64_t build_messages = 0;   // construction requests of the build wave
  /// Set by repair (and by the GroupManager when a departure changes some
  /// in-tree peer's candidate set): the recursion that produced `zones`
  /// can no longer be replayed, so zone-guided grafts must rebuild.
  bool zones_stale = false;

  [[nodiscard]] std::size_t relay_count() const noexcept {
    return tree.reached_count() - reached_subscribers;
  }
};

/// Builds the pruned construction for `subscribers` (indexed by peer id)
/// rooted at `root`. Peers with `alive[p] == false` are skipped as
/// delegates (churn); an empty `alive` means everyone is up. Throws on
/// PickPolicy::kRandom — incremental maintenance requires the build to be
/// a deterministic function of (graph, root, subscribers).
[[nodiscard]] GroupTree build_group_tree(const overlay::OverlayGraph& graph, PeerId root,
                                         const std::vector<bool>& subscribers,
                                         const multicast::MulticastConfig& config = {},
                                         const std::vector<bool>& alive = {});

struct GraftResult {
  bool attached = false;
  std::size_t messages = 0;  // graft-request hops walked/created
};

/// Resumable zone-descent state for splicing one subscriber into a cached
/// tree: each graft_step() takes exactly ONE descent decision — the local
/// partition step at `current` — so the descent can be driven hop by hop
/// from routed envelopes (the distributed control plane) or looped locally
/// (graft_subscriber, the synchronous oracle). The cursor holds only peer
/// indices, never tree pointers: steps always run against the caller's
/// current GroupTree, so copy-on-write clones between steps are safe.
struct GraftCursor {
  PeerId subscriber = kInvalidPeer;
  PeerId current = kInvalidPeer;  // peer whose descent decision runs next
  std::size_t steps = 0;          // decisions taken (the guard counter)
};

enum class GraftStatus {
  kAttached,   ///< subscriber spliced in (delivery flag set); descent done
  kDescend,    ///< one step taken; route the request to `next`
  kStranded,   ///< no slice contains the subscriber: caller rebuilds
  kExhausted,  ///< step guard tripped (inconsistent cache): caller rebuilds
};

struct GraftStep {
  GraftStatus status = GraftStatus::kStranded;
  PeerId next = kInvalidPeer;  // the peer to hand the descent to (kDescend)
};

/// Starts a graft of `s` into `gt`: the first decision runs at the root.
[[nodiscard]] GraftCursor graft_cursor(const GroupTree& gt, PeerId s);

/// Takes one descent decision at `cursor.current`: replays the partition
/// step there, follows (or creates) the edge of the slice containing the
/// subscriber's point, and advances the cursor. Attaches immediately when
/// the subscriber is already spanned (re-subscribe / relay promotion).
/// Must not be called on a stale-zoned tree (throws std::logic_error) —
/// the caller gates on `zones_stale` before every step because a repair
/// can land between steps of an in-flight descent.
[[nodiscard]] GraftStep graft_step(const overlay::OverlayGraph& graph, GroupTree& gt,
                                   GraftCursor& cursor,
                                   const multicast::MulticastConfig& config = {},
                                   const std::vector<bool>& alive = {});

/// Splices subscriber `s` into a cached tree by resuming the recursion
/// along the slices containing s's point — graft_cursor/graft_step looped
/// to completion in place, which keeps this the golden oracle the routed
/// descent is verified against. Exact: the result equals a fresh build
/// with s added. Throws std::logic_error if `gt.zones_stale`.
[[nodiscard]] GraftResult graft_subscriber(const overlay::OverlayGraph& graph, GroupTree& gt,
                                           PeerId s,
                                           const multicast::MulticastConfig& config = {},
                                           const std::vector<bool>& alive = {});

/// Removes subscriber `s`: clears the delivery flag and cascades away the
/// relay-only leaf chain that served no one else. Returns edges removed.
std::size_t prune_subscriber(GroupTree& gt, PeerId s);

struct GroupRepairResult {
  /// True when in-place repair could not mend the tree (orphan with no
  /// usable adopter or splice path); the caller should rebuild.
  bool needs_rebuild = false;
  std::size_t reattached = 0;      // orphan subtrees mended in place
  std::size_t spliced_relays = 0;  // relays recruited by root-path splices
  std::size_t messages = 0;        // reattach/splice control traffic
};

/// Mends the tree after `departed` left. Orphan subtrees first try the
/// stability-layer rule (adopt under an alive in-tree overlay neighbour
/// outside their own subtree); failing that they splice onto the greedy
/// route toward the tree root, recruiting relays along the way. `departed`
/// must not be the tree root (the GroupManager migrates the rendezvous
/// first). Any structural change marks the zones stale.
[[nodiscard]] GroupRepairResult repair_group_tree(const overlay::OverlayGraph& graph,
                                                  GroupTree& gt, PeerId departed,
                                                  const std::vector<bool>& alive);

struct StrandRescueResult {
  std::size_t rescued = 0;         // stranded subscribers spliced in
  std::size_t spliced_relays = 0;  // non-tree relays recruited en route
  std::size_t messages = 0;        // splice control traffic
  std::size_t still_stranded = 0;  // no greedy route reached the tree
};

/// Splices every unreached subscriber onto the tree via the greedy route
/// toward the root — the repair fallback applied at build time. A fresh
/// zone-recursion build under churn can strand subscribers the in-place
/// repair rule would have kept (a departed delegate makes whole slices
/// unreachable from the root), so a rebuild alone is NOT a superset of
/// repair; this pass restores that guarantee. Splice paths deviate from
/// the recursion, so any change marks the zones stale (grafts rebuild).
StrandRescueResult rescue_stranded(const overlay::OverlayGraph& graph, GroupTree& gt,
                                   const std::vector<bool>& alive);

}  // namespace geomcast::groups
