#include "groups/group_stats.hpp"

#include <sstream>

#include "util/stats.hpp"

namespace geomcast::groups {

double GroupStats::delivery_ratio() const noexcept {
  if (expected_deliveries == 0) return 1.0;
  return static_cast<double>(deliveries) / static_cast<double>(expected_deliveries);
}

double GroupStats::maintenance_per_publish() const noexcept {
  if (publishes == 0) return 0.0;
  return static_cast<double>(build_messages + repair_messages) /
         static_cast<double>(publishes);
}

GroupStats& GroupStats::operator+=(const GroupStats& other) noexcept {
  subscribes += other.subscribes;
  unsubscribes += other.unsubscribes;
  publishes += other.publishes;
  expected_deliveries += other.expected_deliveries;
  deliveries += other.deliveries;
  duplicate_deliveries += other.duplicate_deliveries;
  payload_messages += other.payload_messages;
  ack_messages += other.ack_messages;
  retransmissions += other.retransmissions;
  abandoned_hops += other.abandoned_hops;
  control_messages += other.control_messages;
  stranded_messages += other.stranded_messages;
  tree_builds += other.tree_builds;
  build_messages += other.build_messages;
  cache_hits += other.cache_hits;
  grafts += other.grafts;
  prunes += other.prunes;
  repairs += other.repairs;
  repair_messages += other.repair_messages;
  repair_failures += other.repair_failures;
  root_migrations += other.root_migrations;
  stranded_subscribers += other.stranded_subscribers;
  return *this;
}

std::string GroupStats::summary() const {
  std::ostringstream out;
  out << "publishes=" << publishes << " deliveries=" << deliveries << "/"
      << expected_deliveries << " (ratio " << util::format_number(delivery_ratio(), 4)
      << "), payload=" << payload_messages << " (acks " << ack_messages << ", retx "
      << retransmissions << ", dup " << duplicate_deliveries << ", abandoned "
      << abandoned_hops << ") control=" << control_messages
      << " builds=" << tree_builds << " (msgs " << build_messages << ") cache_hits="
      << cache_hits << " grafts=" << grafts << " prunes=" << prunes << " repairs="
      << repairs << " (msgs " << repair_messages << ", failures " << repair_failures
      << ") root_migrations=" << root_migrations
      << " stranded_subscribers=" << stranded_subscribers;
  return out.str();
}

}  // namespace geomcast::groups
