#include "groups/group_stats.hpp"

#include <sstream>

#include "util/stats.hpp"

namespace geomcast::groups {

double GroupStats::delivery_ratio() const noexcept {
  if (expected_deliveries == 0) return 1.0;
  return static_cast<double>(deliveries) / static_cast<double>(expected_deliveries);
}

double GroupStats::maintenance_per_publish() const noexcept {
  if (publishes == 0) return 0.0;
  return static_cast<double>(build_messages + graft_messages + prune_messages +
                             repair_messages) /
         static_cast<double>(publishes);
}

double GroupStats::mean_gap_latency() const noexcept {
  if (gap_seqs_repaired == 0) return 0.0;
  return gap_latency_total / static_cast<double>(gap_seqs_repaired);
}

double GroupStats::mean_batch_occupancy() const noexcept {
  const std::uint64_t flushes = batch_flushes_window + batch_flushes_full;
  if (flushes == 0) return 0.0;
  return static_cast<double>(batch_occupancy_sum) / static_cast<double>(flushes);
}

GroupStats& GroupStats::operator+=(const GroupStats& other) noexcept {
  subscribes += other.subscribes;
  unsubscribes += other.unsubscribes;
  publishes += other.publishes;
  batched_publishes += other.batched_publishes;
  batch_flushes_window += other.batch_flushes_window;
  batch_flushes_full += other.batch_flushes_full;
  batch_occupancy_sum += other.batch_occupancy_sum;
  batch_publishes_lost += other.batch_publishes_lost;
  envelopes_saved += other.envelopes_saved;
  expected_deliveries += other.expected_deliveries;
  deliveries += other.deliveries;
  duplicate_deliveries += other.duplicate_deliveries;
  payload_messages += other.payload_messages;
  ack_messages += other.ack_messages;
  retransmissions += other.retransmissions;
  abandoned_hops += other.abandoned_hops;
  gap_seqs_detected += other.gap_seqs_detected;
  gap_seqs_repaired += other.gap_seqs_repaired;
  gap_seqs_abandoned += other.gap_seqs_abandoned;
  nacks_sent += other.nacks_sent;
  nacked_seqs += other.nacked_seqs;
  nack_deferrals += other.nack_deferrals;
  repairs_served += other.repairs_served;
  repair_misses += other.repair_misses;
  repair_escalations += other.repair_escalations;
  retained_evictions += other.retained_evictions;
  pre_window_deliveries += other.pre_window_deliveries;
  gap_latency_total += other.gap_latency_total;
  control_messages += other.control_messages;
  stranded_messages += other.stranded_messages;
  tree_builds += other.tree_builds;
  build_messages += other.build_messages;
  cache_hits += other.cache_hits;
  grafts += other.grafts;
  graft_messages += other.graft_messages;
  prunes += other.prunes;
  prune_messages += other.prune_messages;
  repairs += other.repairs;
  repair_messages += other.repair_messages;
  repair_failures += other.repair_failures;
  root_migrations += other.root_migrations;
  replica_sync_envelopes += other.replica_sync_envelopes;
  replica_sync_retries += other.replica_sync_retries;
  migration_envelopes += other.migration_envelopes;
  warm_promotions += other.warm_promotions;
  pending_publishes_inherited += other.pending_publishes_inherited;
  heartbeats_sent += other.heartbeats_sent;
  heartbeat_gap_detections += other.heartbeat_gap_detections;
  heartbeat_blind_windows += other.heartbeat_blind_windows;
  stranded_rescues += other.stranded_rescues;
  graft_hops += other.graft_hops;
  graft_retries += other.graft_retries;
  graft_aborts += other.graft_aborts;
  graft_resubscribes += other.graft_resubscribes;
  graft_prefix_batches += other.graft_prefix_batches;
  graft_prefix_merged += other.graft_prefix_merged;
  seq_lease_requests += other.seq_lease_requests;
  seq_leases_granted += other.seq_leases_granted;
  seq_grants_lost += other.seq_grants_lost;
  shard_handoffs += other.shard_handoffs;
  shard_waves += other.shard_waves;
  publisher_batches += other.publisher_batches;
  publisher_batched_publishes += other.publisher_batched_publishes;
  publisher_envelopes_saved += other.publisher_envelopes_saved;
  stranded_subscribers += other.stranded_subscribers;
  delivery_latency.merge(other.delivery_latency);
  gap_repair_latency.merge(other.gap_repair_latency);
  graft_latency.merge(other.graft_latency);
  return *this;
}

std::string GroupStats::summary() const {
  std::ostringstream out;
  out << "publishes=" << publishes << " deliveries=" << deliveries << "/"
      << expected_deliveries << " (ratio " << util::format_number(delivery_ratio(), 4)
      << "), payload=" << payload_messages << " (acks " << ack_messages << ", retx "
      << retransmissions << ", dup " << duplicate_deliveries << ", abandoned "
      << abandoned_hops << ") control=" << control_messages
      << " builds=" << tree_builds << " (msgs " << build_messages << ") cache_hits="
      << cache_hits << " grafts=" << grafts << " (msgs " << graft_messages
      << ") prunes=" << prunes << " (msgs " << prune_messages << ") repairs="
      << repairs << " (msgs " << repair_messages << ", failures " << repair_failures
      << ") root_migrations=" << root_migrations
      << " stranded_subscribers=" << stranded_subscribers;
  if (!delivery_latency.empty())
    out << " delivery_latency_p50=" << util::format_number(delivery_latency.p50(), 4)
        << " p99=" << util::format_number(delivery_latency.p99(), 4);
  if (graft_hops > 0 || graft_aborts > 0)
    out << " graft_hops=" << graft_hops << " (retries " << graft_retries
        << ", aborts " << graft_aborts << ", resubscribes " << graft_resubscribes
        << ")";
  if (gap_seqs_detected > 0 || nacks_sent > 0)
    out << " gaps=" << gap_seqs_detected << " (repaired " << gap_seqs_repaired
        << ", abandoned " << gap_seqs_abandoned << ", mean_latency "
        << util::format_number(mean_gap_latency(), 4) << ") nacks=" << nacks_sent
        << " (seqs " << nacked_seqs << ", deferrals " << nack_deferrals
        << ") repairs_served=" << repairs_served << " (misses " << repair_misses
        << ", escalations " << repair_escalations << ") retained_evictions="
        << retained_evictions;
  if (replica_sync_envelopes > 0 || warm_promotions > 0)
    out << " replica_syncs=" << replica_sync_envelopes << " (retries "
        << replica_sync_retries << ", migration " << migration_envelopes
        << ") warm_promotions=" << warm_promotions
        << " pending_inherited=" << pending_publishes_inherited;
  if (heartbeats_sent > 0)
    out << " heartbeats=" << heartbeats_sent << " (gap_detections "
        << heartbeat_gap_detections << ")";
  if (batch_flushes_window + batch_flushes_full > 0)
    out << " batches=" << (batch_flushes_window + batch_flushes_full) << " (window "
        << batch_flushes_window << ", full " << batch_flushes_full << ", occupancy "
        << util::format_number(mean_batch_occupancy(), 2) << ", lost "
        << batch_publishes_lost << ") envelopes_saved=" << envelopes_saved;
  if (shard_waves > 0 || seq_lease_requests > 0)
    out << " shard_waves=" << shard_waves << " (handoffs " << shard_handoffs
        << ") seq_leases=" << seq_lease_requests << " (granted "
        << seq_leases_granted << ", lost " << seq_grants_lost << ")";
  if (publisher_batches > 0)
    out << " publisher_batches=" << publisher_batches << " (publishes "
        << publisher_batched_publishes << ", envelopes_saved "
        << publisher_envelopes_saved << ")";
  if (graft_prefix_batches > 0)
    out << " graft_prefix_batches=" << graft_prefix_batches << " (merged "
        << graft_prefix_merged << ")";
  return out.str();
}

}  // namespace geomcast::groups
