// Deterministic failure injection for pub/sub scenarios — the harness
// side of the QoS story. The headline injector severs a forwarding relay
// in the middle of a publish wave: exactly the failure per-hop QoS 1 is
// blind to (the relay's whole subtree silently misses the wave) and the
// QoS 2 NACK/gap-repair plane exists to recover. Used by the
// bench_pubsub_throughput --midwave mode and the QoS 2 test batteries so
// both drive the identical scenario.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "groups/pubsub.hpp"

namespace geomcast::groups {

/// Schedules a mid-wave kill for `group` on `system`'s simulator: shortly
/// after the wave published at `wave_time` starts, picks the relay
/// (in-tree, non-root, alive, and subscribed nowhere per
/// `member_anywhere`) with the most subscriber descendants and departs it
/// just before the wave reaches it, severing the subtree mid-flight.
/// Excluding subscribers keeps the measurement clean: a departed
/// subscriber's own expected deliveries are unrecoverable at any QoS and
/// would blur the subtree-repair signal.
///
/// `on_kill(relay, severed_subscribers)` fires at selection time (not at
/// all when no candidate exists). `system` and `member_anywhere` must
/// outlive the run; the wave at `wave_time` should publish from the
/// group's root so the wave start — and the arrival-time estimate the
/// kill is timed against — is exact.
///
/// `wave_start_delay` shifts the arrival estimate for pipelines where the
/// wave leaves the root later than the publish lands there: with batching
/// on, a root-published wave buffers for one `PubSubConfig::batch_window`
/// before flushing, and a kill timed against the unbatched start would
/// depart the relay BEFORE the wave exists — the tree repairs around it
/// and nothing is severed mid-flight (a different, weaker scenario). Pass
/// the batch window so the kill lands mid-wave on the flushed range too.
void schedule_midwave_kill(
    PubSubSystem& system, GroupId group, double wave_time,
    const std::vector<bool>& member_anywhere,
    std::function<void(PeerId relay, std::size_t severed_subscribers)> on_kill,
    double wave_start_delay = 0.0);

/// The failover battery's scenario: a mid-wave relay kill AND a root kill
/// on the same wave. The relay is chosen among the root's DIRECT children
/// (non-root, alive, subscribed nowhere, with subscriber descendants) so
/// the severed subscribers' ancestor chain contains nothing between the
/// dead relay and the dead root — their repair MUST come from the
/// migrated-to root, which is exactly where cold rebuild (empty
/// RetainedBuffer -> abandon) and warm failover (replicated history ->
/// repair) diverge. The group's replica candidate is excluded from relay
/// selection, so the same victim is picked whether warm_failover is on or
/// off (the cells of a cold/warm comparison kill identically) and the
/// replica survives to be promoted.
///
/// The relay departs just before the wave reaches it (as in
/// schedule_midwave_kill); the root departs at
/// `wave_time + wave_start_delay + root_kill_delay` — after the flush (and,
/// warm, after the flush's replica sync has landed one latency later), but
/// before the severed subscribers' first gap timeout fires.
/// `on_kill(root, relay, severed_subscribers)` fires at selection time.
void schedule_root_kill(
    PubSubSystem& system, GroupId group, double wave_time,
    const std::vector<bool>& member_anywhere,
    std::function<void(PeerId root, PeerId relay, std::size_t severed_subscribers)>
        on_kill,
    double wave_start_delay = 0.0, double root_kill_delay = 0.02);

}  // namespace geomcast::groups
