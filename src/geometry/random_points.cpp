#include "geometry/random_points.hpp"

#include <algorithm>
#include <stdexcept>

namespace geomcast::geometry {

std::vector<Point> random_points(util::Rng& rng, std::size_t count, std::size_t dims,
                                 double vmax) {
  if (dims < 1 || dims > kMaxDims)
    throw std::invalid_argument("random_points: dims out of range");
  if (vmax <= 0.0) throw std::invalid_argument("random_points: vmax must be positive");

  std::vector<Point> points(count, Point(dims));
  // Draw per dimension and deduplicate there: sorting a scratch column makes
  // duplicate detection O(N log N) instead of hashing doubles.
  std::vector<double> column(count);
  for (std::size_t d = 0; d < dims; ++d) {
    while (true) {
      for (auto& v : column) v = rng.uniform(0.0, vmax);
      std::vector<double> sorted = column;
      std::sort(sorted.begin(), sorted.end());
      if (std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end()) break;
    }
    for (std::size_t i = 0; i < count; ++i) points[i][d] = column[i];
  }
  return points;
}

bool all_coordinates_distinct(const std::vector<Point>& points) {
  if (points.empty()) return true;
  const std::size_t dims = points.front().dims();
  std::vector<double> column(points.size());
  for (std::size_t d = 0; d < dims; ++d) {
    for (std::size_t i = 0; i < points.size(); ++i) column[i] = points[i][d];
    std::sort(column.begin(), column.end());
    if (std::adjacent_find(column.begin(), column.end()) != column.end()) return false;
  }
  return true;
}

}  // namespace geomcast::geometry
