// Orthant classification relative to an ego point — the Orthogonal
// Hyperplanes region structure from the paper.
//
// After conceptually translating the ego peer P to the origin, the D
// hyperplanes x(i)=0 split space into 2^D open orthants. A point Q with all
// coordinates distinct from P's lies in exactly one of them. The orthant
// code packs the side bits: bit i is set iff x(Q,i) > x(P,i).
#pragma once

#include <cstdint>

#include "geometry/point.hpp"
#include "geometry/rect.hpp"

namespace geomcast::geometry {

using OrthantCode = std::uint32_t;

/// Number of orthants in D dimensions (2^D).
[[nodiscard]] constexpr std::uint32_t orthant_count(std::size_t dims) noexcept {
  return std::uint32_t{1} << dims;
}

/// Orthant of `q` relative to `ego`. Requires distinct coordinates in every
/// dimension (the paper's standing assumption); equal coordinates are
/// classified to the "below" side deterministically.
[[nodiscard]] OrthantCode orthant_of(const Point& ego, const Point& q) noexcept;

/// The open half-space product for an orthant: side i is (x(ego,i), +inf)
/// when bit i of `code` is set, (-inf, x(ego,i)) otherwise. This is exactly
/// the hyper-rectangle HR the paper intersects with Z(P) when delegating a
/// responsibility zone.
[[nodiscard]] Rect orthant_rect(const Point& ego, OrthantCode code) noexcept;

}  // namespace geomcast::geometry
