// Random identifier generation matching the paper's workload: coordinates
// uniform in [0, VMAX] with all coordinates distinct within each dimension.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point.hpp"
#include "util/rng.hpp"

namespace geomcast::geometry {

/// Draws `count` points with i.i.d. uniform coordinates in [0, vmax),
/// re-drawing on (astronomically rare) per-dimension duplicates so the
/// paper's "all coordinates in the same dimension are distinct" assumption
/// holds exactly.
[[nodiscard]] std::vector<Point> random_points(util::Rng& rng, std::size_t count,
                                               std::size_t dims,
                                               double vmax = kDefaultVmax);

/// True iff no two points share a coordinate value in any dimension.
[[nodiscard]] bool all_coordinates_distinct(const std::vector<Point>& points);

}  // namespace geomcast::geometry
