// Hyperplane arrangements for the generic "Hyperplanes" neighbour-selection
// method of the paper's reference [1].
//
// All hyperplanes pass through the (translated) origin, i.e. through the ego
// peer. A candidate's region is the vector of signs of its dot products with
// the plane normals. The paper names three instances:
//   1. Orthogonal   — D planes x(i)=0            (regions = 2^D orthants)
//   2. Ternary      — planes a·x=0, a ∈ {-1,0,1}^D (reference [2])
//   3. Empty (H=0)  — a single region containing everything
// Custom normal sets are supported as well.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point.hpp"

namespace geomcast::geometry {

/// Opaque region identifier. Two candidates share a region iff their sign
/// signatures agree plane-by-plane. For arrangements with <= 32 planes the
/// key is an exact base-4 encoding; larger arrangements fall back to an
/// FNV-1a hash of the signature (collisions astronomically unlikely and
/// harmless for neighbour selection: a collision only merges two regions).
struct RegionKey {
  std::uint64_t value = 0;
  [[nodiscard]] bool operator==(const RegionKey&) const noexcept = default;
  [[nodiscard]] bool operator<(const RegionKey& other) const noexcept {
    return value < other.value;
  }
};

struct RegionKeyHash {
  [[nodiscard]] std::size_t operator()(const RegionKey& key) const noexcept {
    return static_cast<std::size_t>(key.value * 0x9e3779b97f4a7c15ULL >> 16);
  }
};

class HyperplaneArrangement {
 public:
  /// H=0: one region (instance 3; plain K-closest selection).
  [[nodiscard]] static HyperplaneArrangement empty(std::size_t dims);

  /// The D orthogonal planes x(i)=0 (instance 1).
  [[nodiscard]] static HyperplaneArrangement orthogonal(std::size_t dims);

  /// All planes a·x=0 with a ∈ {-1,0,+1}^D, deduplicated up to sign
  /// (first nonzero coefficient positive); (3^D - 1)/2 planes (instance 2).
  /// Throws std::invalid_argument for dims > 6 (plane count explodes).
  [[nodiscard]] static HyperplaneArrangement ternary(std::size_t dims);

  /// Arrangement from explicit unit-free normals (each of size dims).
  [[nodiscard]] static HyperplaneArrangement custom(std::size_t dims,
                                                    std::vector<std::vector<double>> normals);

  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }
  [[nodiscard]] std::size_t plane_count() const noexcept { return normals_.size(); }

  /// Region of candidate `q` relative to ego `p` (q translated so p is the
  /// origin, then sign of every dot product). Points on a plane get sign 0,
  /// forming their own (lower-dimensional) region — with the paper's
  /// distinct-coordinate assumption this never happens for the orthogonal
  /// arrangement.
  [[nodiscard]] RegionKey region_of(const Point& p, const Point& q) const noexcept;

  /// Upper bound on the number of distinct full-dimensional regions
  /// (2^H for H planes; exact for the orthogonal arrangement).
  [[nodiscard]] std::uint64_t max_region_count() const noexcept;

  [[nodiscard]] const std::vector<std::vector<double>>& normals() const noexcept {
    return normals_;
  }

 private:
  HyperplaneArrangement(std::size_t dims, std::vector<std::vector<double>> normals);

  std::size_t dims_ = 0;
  std::vector<std::vector<double>> normals_;
  bool exact_encoding_ = true;  // true when plane_count() <= 32
};

}  // namespace geomcast::geometry
