#include "geometry/hyperplane.hpp"

#include <cassert>
#include <stdexcept>

namespace geomcast::geometry {

HyperplaneArrangement::HyperplaneArrangement(std::size_t dims,
                                             std::vector<std::vector<double>> normals)
    : dims_(dims), normals_(std::move(normals)) {
  if (dims < 1 || dims > kMaxDims)
    throw std::invalid_argument("arrangement dims out of range");
  for (const auto& normal : normals_)
    if (normal.size() != dims)
      throw std::invalid_argument("hyperplane normal has wrong dimension");
  exact_encoding_ = normals_.size() <= 32;
}

HyperplaneArrangement HyperplaneArrangement::empty(std::size_t dims) {
  return HyperplaneArrangement(dims, {});
}

HyperplaneArrangement HyperplaneArrangement::orthogonal(std::size_t dims) {
  std::vector<std::vector<double>> normals(dims, std::vector<double>(dims, 0.0));
  for (std::size_t i = 0; i < dims; ++i) normals[i][i] = 1.0;
  return HyperplaneArrangement(dims, std::move(normals));
}

HyperplaneArrangement HyperplaneArrangement::ternary(std::size_t dims) {
  if (dims > 6)
    throw std::invalid_argument(
        "ternary arrangement limited to dims <= 6 ((3^D-1)/2 planes)");
  std::vector<std::vector<double>> normals;
  std::vector<double> coeff(dims, -1.0);
  // Enumerate {-1,0,1}^D like a base-3 counter; keep vectors whose first
  // nonzero coefficient is positive (dedup antipodal normals) and skip zero.
  while (true) {
    double first_nonzero = 0.0;
    for (std::size_t i = 0; i < dims; ++i) {
      if (coeff[i] != 0.0) {
        first_nonzero = coeff[i];
        break;
      }
    }
    if (first_nonzero > 0.0) normals.push_back(coeff);
    std::size_t pos = 0;
    while (pos < dims && coeff[pos] == 1.0) coeff[pos++] = -1.0;
    if (pos == dims) break;
    coeff[pos] += 1.0;
  }
  return HyperplaneArrangement(dims, std::move(normals));
}

HyperplaneArrangement HyperplaneArrangement::custom(
    std::size_t dims, std::vector<std::vector<double>> normals) {
  return HyperplaneArrangement(dims, std::move(normals));
}

RegionKey HyperplaneArrangement::region_of(const Point& p, const Point& q) const noexcept {
  assert(p.dims() == dims_ && q.dims() == dims_);
  if (normals_.empty()) return RegionKey{0};

  std::uint64_t key = 0;
  for (std::size_t h = 0; h < normals_.size(); ++h) {
    double dot = 0.0;
    for (std::size_t i = 0; i < dims_; ++i) dot += normals_[h][i] * (q[i] - p[i]);
    const std::uint64_t sign = dot > 0.0 ? 2u : (dot < 0.0 ? 1u : 0u);
    if (exact_encoding_) {
      key |= sign << (2 * h);
    } else {
      // FNV-1a over the sign stream for very large arrangements.
      key = (key ^ sign) * 0x100000001b3ULL;
    }
  }
  return RegionKey{key};
}

std::uint64_t HyperplaneArrangement::max_region_count() const noexcept {
  const std::size_t h = normals_.size();
  if (h >= 63) return ~std::uint64_t{0};
  return std::uint64_t{1} << h;
}

}  // namespace geomcast::geometry
