#include "geometry/rect.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace geomcast::geometry {

Rect Rect::whole_space(std::size_t dims) noexcept {
  Rect rect(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    rect.lo_[i] = -kInf;
    rect.hi_[i] = kInf;
  }
  return rect;
}

Rect Rect::cube(std::size_t dims, double lo, double hi) noexcept {
  Rect rect(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    rect.lo_[i] = lo;
    rect.hi_[i] = hi;
  }
  return rect;
}

Rect Rect::spanned_by(const Point& a, const Point& b) noexcept {
  assert(a.dims() == b.dims());
  Rect rect(a.dims());
  for (std::size_t i = 0; i < a.dims(); ++i) {
    rect.lo_[i] = std::min(a[i], b[i]);
    rect.hi_[i] = std::max(a[i], b[i]);
  }
  return rect;
}

bool Rect::contains_interior(const Point& p) const noexcept {
  assert(p.dims() == dims_);
  for (std::size_t i = 0; i < dims_; ++i)
    if (!(lo_[i] < p[i] && p[i] < hi_[i])) return false;
  return true;
}

bool Rect::contains_closed(const Point& p) const noexcept {
  assert(p.dims() == dims_);
  for (std::size_t i = 0; i < dims_; ++i)
    if (!(lo_[i] <= p[i] && p[i] <= hi_[i])) return false;
  return true;
}

bool Rect::interior_empty() const noexcept {
  for (std::size_t i = 0; i < dims_; ++i)
    if (!(lo_[i] < hi_[i])) return true;
  return false;
}

Rect Rect::intersect(const Rect& other) const noexcept {
  assert(dims_ == other.dims_);
  Rect rect(dims_);
  for (std::size_t i = 0; i < dims_; ++i) {
    rect.lo_[i] = std::max(lo_[i], other.lo_[i]);
    rect.hi_[i] = std::min(hi_[i], other.hi_[i]);
  }
  return rect;
}

bool Rect::interior_subset_of(const Rect& other) const noexcept {
  assert(dims_ == other.dims_);
  if (interior_empty()) return true;  // empty set is a subset of anything
  for (std::size_t i = 0; i < dims_; ++i)
    if (lo_[i] < other.lo_[i] || hi_[i] > other.hi_[i]) return false;
  return true;
}

bool Rect::operator==(const Rect& other) const noexcept {
  if (dims_ != other.dims_) return false;
  for (std::size_t i = 0; i < dims_; ++i)
    if (lo_[i] != other.lo_[i] || hi_[i] != other.hi_[i]) return false;
  return true;
}

std::string Rect::to_string(int decimals) const {
  auto bound = [&](double v) -> std::string {
    if (v == kInf) return "+inf";
    if (v == -kInf) return "-inf";
    return util::format_number(v, decimals);
  };
  std::string out;
  for (std::size_t i = 0; i < dims_; ++i) {
    if (i) out += " x ";
    out += "(" + bound(lo_[i]) + ", " + bound(hi_[i]) + ")";
  }
  return out;
}

}  // namespace geomcast::geometry
