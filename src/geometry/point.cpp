#include "geometry/point.hpp"

#include "util/stats.hpp"

namespace geomcast::geometry {

std::string Point::to_string(int decimals) const {
  std::string out = "(";
  for (std::size_t i = 0; i < dims_; ++i) {
    if (i) out += ", ";
    out += util::format_number(coords_[i], decimals);
  }
  out += ")";
  return out;
}

}  // namespace geomcast::geometry
