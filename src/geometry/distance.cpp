#include "geometry/distance.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace geomcast::geometry {

double l1_distance(const Point& a, const Point& b) noexcept {
  assert(a.dims() == b.dims());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.dims(); ++i) sum += std::abs(a[i] - b[i]);
  return sum;
}

double l2_distance_sq(const Point& a, const Point& b) noexcept {
  assert(a.dims() == b.dims());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.dims(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double l2_distance(const Point& a, const Point& b) noexcept {
  return std::sqrt(l2_distance_sq(a, b));
}

double linf_distance(const Point& a, const Point& b) noexcept {
  assert(a.dims() == b.dims());
  double best = 0.0;
  for (std::size_t i = 0; i < a.dims(); ++i) best = std::max(best, std::abs(a[i] - b[i]));
  return best;
}

double distance(Metric metric, const Point& a, const Point& b) noexcept {
  switch (metric) {
    case Metric::kL1: return l1_distance(a, b);
    case Metric::kL2: return l2_distance(a, b);
    case Metric::kLInf: return linf_distance(a, b);
  }
  return 0.0;  // unreachable
}

std::string to_string(Metric metric) {
  switch (metric) {
    case Metric::kL1: return "l1";
    case Metric::kL2: return "l2";
    case Metric::kLInf: return "linf";
  }
  return "?";
}

Metric metric_from_string(const std::string& name) {
  if (name == "l1") return Metric::kL1;
  if (name == "l2") return Metric::kL2;
  if (name == "linf") return Metric::kLInf;
  throw std::invalid_argument("unknown metric '" + name + "' (expected l1|l2|linf)");
}

}  // namespace geomcast::geometry
