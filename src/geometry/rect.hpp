// Axis-aligned hyper-rectangles.
//
// Two uses in the paper:
//  * responsibility zones Z(P) — always the *strict interior* of an
//    axis-aligned hyper-rectangle, possibly unbounded on some sides
//    (sides of the form (-inf, x) or (x, +inf) appear during zone splits);
//  * the empty-rectangle neighbour rule — the closed box spanned by two
//    points must contain no third peer.
//
// Rect stores per-dimension lower/upper bounds (±infinity allowed) and
// offers both strict-interior and closed containment.
#pragma once

#include <cassert>
#include <limits>
#include <optional>
#include <string>

#include "geometry/point.hpp"

namespace geomcast::geometry {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

class Rect {
 public:
  Rect() noexcept = default;

  /// Degenerate rect (lo == hi == 0 in every dimension); use the factories.
  explicit Rect(std::size_t dims) noexcept : dims_(dims) {
    assert(dims >= 1 && dims <= kMaxDims);
    lo_.fill(0.0);
    hi_.fill(0.0);
  }

  /// The whole D-dimensional space: (-inf, +inf) in every dimension.
  [[nodiscard]] static Rect whole_space(std::size_t dims) noexcept;

  /// The box [lo, hi]^D with the same scalar bounds in every dimension.
  [[nodiscard]] static Rect cube(std::size_t dims, double lo, double hi) noexcept;

  /// The box spanned by two corner points:
  /// side i = [min(a_i, b_i), max(a_i, b_i)]  (paper's empty-rectangle test).
  [[nodiscard]] static Rect spanned_by(const Point& a, const Point& b) noexcept;

  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }
  [[nodiscard]] double lo(std::size_t i) const noexcept { assert(i < dims_); return lo_[i]; }
  [[nodiscard]] double hi(std::size_t i) const noexcept { assert(i < dims_); return hi_[i]; }
  void set_lo(std::size_t i, double v) noexcept { assert(i < dims_); lo_[i] = v; }
  void set_hi(std::size_t i, double v) noexcept { assert(i < dims_); hi_[i] = v; }

  /// Strict-interior membership: lo_i < x_i < hi_i for all i. This is the
  /// containment used for responsibility zones ("(strict) interior").
  [[nodiscard]] bool contains_interior(const Point& p) const noexcept;

  /// Closed membership: lo_i <= x_i <= hi_i for all i (empty-rect test).
  [[nodiscard]] bool contains_closed(const Point& p) const noexcept;

  /// True if the strict interior is empty (some lo_i >= hi_i).
  [[nodiscard]] bool interior_empty() const noexcept;

  /// Componentwise intersection (max of lows, min of highs). The result may
  /// have an empty interior; check interior_empty().
  [[nodiscard]] Rect intersect(const Rect& other) const noexcept;

  /// True if the strict interiors of the two rects are disjoint.
  [[nodiscard]] bool interior_disjoint(const Rect& other) const noexcept {
    return intersect(other).interior_empty();
  }

  /// True if every point of this rect's interior lies in other's interior.
  [[nodiscard]] bool interior_subset_of(const Rect& other) const noexcept;

  [[nodiscard]] bool operator==(const Rect& other) const noexcept;
  [[nodiscard]] bool operator!=(const Rect& other) const noexcept { return !(*this == other); }

  [[nodiscard]] std::string to_string(int decimals = 2) const;

 private:
  std::array<double, kMaxDims> lo_{};
  std::array<double, kMaxDims> hi_{};
  std::size_t dims_ = 0;
};

}  // namespace geomcast::geometry
