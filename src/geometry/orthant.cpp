#include "geometry/orthant.hpp"

#include <cassert>

namespace geomcast::geometry {

OrthantCode orthant_of(const Point& ego, const Point& q) noexcept {
  assert(ego.dims() == q.dims());
  OrthantCode code = 0;
  for (std::size_t i = 0; i < ego.dims(); ++i)
    if (q[i] > ego[i]) code |= OrthantCode{1} << i;
  return code;
}

Rect orthant_rect(const Point& ego, OrthantCode code) noexcept {
  Rect rect(ego.dims());
  for (std::size_t i = 0; i < ego.dims(); ++i) {
    if (code & (OrthantCode{1} << i)) {
      rect.set_lo(i, ego[i]);
      rect.set_hi(i, kInf);
    } else {
      rect.set_lo(i, -kInf);
      rect.set_hi(i, ego[i]);
    }
  }
  return rect;
}

}  // namespace geomcast::geometry
