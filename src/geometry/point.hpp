// D-dimensional virtual coordinates ("identifiers" in the paper's terms).
//
// The paper works in a D-dimensional space with D between 2 and 10 and all
// coordinates in [0, VMAX]. Points therefore use a small inline buffer: no
// heap allocation, trivially copyable, cheap to pass by value.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>

namespace geomcast::geometry {

/// Maximum supported dimensionality. The paper evaluates up to D=10; we
/// leave headroom without paying for dynamic allocation.
inline constexpr std::size_t kMaxDims = 12;

/// Default coordinate-space bound (the paper's VMAX; any positive value
/// works since every algorithm is scale-invariant).
inline constexpr double kDefaultVmax = 1000.0;

/// A point in D-dimensional space. Fixed capacity, runtime dimension.
class Point {
 public:
  Point() noexcept = default;

  explicit Point(std::size_t dims) noexcept : dims_(dims) {
    assert(dims >= 1 && dims <= kMaxDims);
    coords_.fill(0.0);
  }

  Point(std::initializer_list<double> coords) noexcept : dims_(coords.size()) {
    assert(coords.size() >= 1 && coords.size() <= kMaxDims);
    std::size_t i = 0;
    for (double c : coords) coords_[i++] = c;
  }

  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }

  [[nodiscard]] double operator[](std::size_t i) const noexcept {
    assert(i < dims_);
    return coords_[i];
  }
  [[nodiscard]] double& operator[](std::size_t i) noexcept {
    assert(i < dims_);
    return coords_[i];
  }

  [[nodiscard]] bool operator==(const Point& other) const noexcept {
    if (dims_ != other.dims_) return false;
    for (std::size_t i = 0; i < dims_; ++i)
      if (coords_[i] != other.coords_[i]) return false;
    return true;
  }
  [[nodiscard]] bool operator!=(const Point& other) const noexcept {
    return !(*this == other);
  }

  /// Componentwise difference (this - other); dimensions must match.
  [[nodiscard]] Point minus(const Point& other) const noexcept {
    assert(dims_ == other.dims_);
    Point out(dims_);
    for (std::size_t i = 0; i < dims_; ++i) out[i] = coords_[i] - other.coords_[i];
    return out;
  }

  [[nodiscard]] std::string to_string(int decimals = 2) const;

 private:
  std::array<double, kMaxDims> coords_{};
  std::size_t dims_ = 0;
};

}  // namespace geomcast::geometry
