// Distance functions over virtual coordinates. The paper's §2 algorithm
// sorts region members by L1 distance; the generic Hyperplanes method only
// requires "a distance function", so L2 and L-infinity are provided too.
#pragma once

#include <string>

#include "geometry/point.hpp"

namespace geomcast::geometry {

enum class Metric { kL1, kL2, kLInf };

[[nodiscard]] double l1_distance(const Point& a, const Point& b) noexcept;
[[nodiscard]] double l2_distance(const Point& a, const Point& b) noexcept;
/// Squared Euclidean distance (monotone in L2; avoids the sqrt when only
/// comparisons are needed).
[[nodiscard]] double l2_distance_sq(const Point& a, const Point& b) noexcept;
[[nodiscard]] double linf_distance(const Point& a, const Point& b) noexcept;

/// Dispatches on the metric enum. For kL2 this returns the true (rooted)
/// distance so values are comparable across metrics.
[[nodiscard]] double distance(Metric metric, const Point& a, const Point& b) noexcept;

[[nodiscard]] std::string to_string(Metric metric);
/// Parses "l1" / "l2" / "linf" (case-sensitive); throws std::invalid_argument.
[[nodiscard]] Metric metric_from_string(const std::string& name);

}  // namespace geomcast::geometry
